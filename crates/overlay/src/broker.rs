//! The Broker Module.
//!
//! Brokers are the special peers that control access to the JXTA-Overlay
//! network: they authenticate end users against the central database, keep a
//! global index of resources (advertisements) and propagate peer information
//! across group members, acting as beacons for newly arrived client peers
//! (paper, §2.1).
//!
//! A [`Broker`] owns its state; [`Broker::spawn`] starts the broker event
//! loop on its own thread so that client primitives interact with it purely
//! through the simulated network, exactly like a remote broker process.
//! Broker *functions* are "always executed as a result of messages sent via
//! Client Module primitives" (§2.2), which maps to the message handlers in
//! [`Broker::handle_message`].
//!
//! The plain broker understands only the insecure message kinds.  The secure
//! extension registers a [`BrokerExtension`] that handles the
//! `SecureConnect*`/`SecureLogin*` kinds; this keeps the Broker Module open
//! for extension without the security crate having to reimplement indexing
//! and group management.
//!
//! # Federation
//!
//! The paper's architecture has a *backbone* of brokers, not a single one.
//! A broker therefore also speaks two inter-broker message kinds:
//!
//! * [`MessageKind::BrokerSync`] — gossip that replicates the advertisement
//!   index, group membership and peer→broker routing to every peer broker.
//!   Sync messages carry a per-origin sequence number; stale or duplicate
//!   sequence numbers (replays) and messages from peers that are not part of
//!   the federation are rejected and counted.
//! * [`MessageKind::BrokerRelay`] — an opaque client payload crossing the
//!   backbone towards the broker that homes the destination peer.  Clients
//!   trigger it with [`MessageKind::RelayViaBroker`]; each hop of the relay
//!   is charged its own link cost (see [`SimNetwork::forward`]).
//!
//! [`crate::federation::BrokerNetwork`] wires brokers into a full mesh.

use crate::database::UserDatabase;
use crate::group::{GroupId, GroupRegistry};
use crate::id::PeerId;
use crate::membership::PartialView;
use crate::message::{Message, MessageKind};
use crate::plumtree::{GossipId, PlumtreeState};
use crate::metrics::{FederationMetrics, FederationStats, PipelineMetrics, PipelineStats};
use crate::net::{NetMessage, SimNetwork};
use crate::shard::{self, SectionTree, ShardRing};
use crate::swim::{AliveOutcome, DeadOutcome, SuspectOutcome, SwimDetector};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a broker peer.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Human-readable broker name (the paper's brokers have well-known
    /// identifiers such as DNS names).
    pub name: String,
    /// Sharding mode of the federation state this broker keeps.
    ///
    /// `None` (the default) fully replicates the advertisement index and
    /// group membership to every broker, exactly as PR 2's federation did.
    /// `Some(k)` partitions both across the consistent-hash ring
    /// ([`crate::shard::ShardRing`]): each `(group, owner)` entry lives on
    /// `k` replica brokers, gossip for it goes only to those replicas, and
    /// non-local lookups are routed to an owning replica with
    /// [`MessageKind::ShardQuery`].  The peer→home-broker routing table is
    /// fully replicated in both modes — it is small and on the relay hot
    /// path.  All brokers of one federation must use the same setting.
    pub replication_factor: Option<usize>,
    /// Number of ingress verify workers a *spawned* broker runs.
    ///
    /// `0` (the default) keeps the classic single-thread event loop: one
    /// thread decodes, verifies and applies every message.  `n > 0` turns
    /// ingress into a staged pipeline: an ingress thread stamps arriving
    /// messages with monotone tickets, `n` workers decode them and run the
    /// stateless cryptographic pre-verification
    /// ([`BrokerExtension::preverify`]) in parallel, and a dispatcher
    /// drains completions **in ticket order** into partitioned apply lanes
    /// (see [`Broker::spawn`] and [`BrokerConfig::apply_lanes`]):
    /// partition-local mutations run in parallel across lanes while
    /// partition-spanning messages apply under a full-lane barrier, so
    /// per-sender ordering plus replay-protection semantics are exactly
    /// those of the single-thread loop.  Inline
    /// drivers ([`crate::federation::InlineFederation`]) ignore this knob —
    /// [`Broker::process_net`] runs both stages back to back on the calling
    /// thread, which is what keeps the deterministic proptests seed-stable.
    pub verify_workers: usize,
    /// Capacity of the spawned broker's network inbox.
    ///
    /// `None` (the default) keeps the unbounded channel.  `Some(n)` bounds
    /// the inbox at `n` queued messages: senders that find it full stall
    /// briefly (explicit backpressure) and overflow past the network's
    /// backpressure timeout is shed and counted — see
    /// [`SimNetwork::register_bounded`].
    pub inbox_capacity: Option<usize>,
    /// Number of partitioned apply lanes a *spawned*, pipelined broker runs.
    ///
    /// `None` (the default) sizes the lane pool to `verify_workers`; `Some(n)`
    /// pins it (`Some(1)` reproduces the old fully serialized apply stage).
    /// Ignored when `verify_workers == 0` — the classic loop has no apply
    /// stage to partition.  See [`Broker::spawn`] for the lane/barrier model.
    pub apply_lanes: Option<usize>,
    /// Anti-entropy strategy for the two shard-keyed sections (advertisement
    /// index and group membership).
    ///
    /// `true` (the default) repairs divergence through a hash tree over the
    /// shard-key space: a digest mismatch starts a descent that narrows to
    /// the divergent key ranges in O(log n) message legs and ships only the
    /// entries in those ranges, paged into bounded messages.  `false`
    /// restores the PR 4 behaviour — any mismatch ships the entire section —
    /// which costs O(shard) bytes per divergence and exists as the
    /// experimental baseline.  Both strategies run the same LWW merge, so
    /// mixed federations still reconverge (a flat broker just ships more).
    pub repair_tree: bool,
    /// Forces the classic full-mesh fabric: every broadcast gossip event is
    /// sent directly to every peer broker, regardless of federation size.
    ///
    /// `false` (the default) engages the epidemic backbone once the known
    /// peer set outgrows [`BrokerConfig::active_view`]: broadcasts are then
    /// eagerly pushed along the Plumtree edges of the bounded active view
    /// and merely advertised (`IHave`) on the rest, capping every broker's
    /// per-publish fan-out at the view size instead of O(N).  Federations
    /// at or below the view capacity behave identically either way — their
    /// views are complete — so this knob matters only at scale, where it
    /// buys worst-case direct delivery at O(N) per-broker cost.  All
    /// brokers of one federation must agree on it: a mesh broker never
    /// forwards, so a mixed fabric would leave epidemic brokers waiting on
    /// relays that never come (anti-entropy would still converge them, but
    /// slowly).
    pub full_mesh: bool,
    /// Capacity of the membership layer's active view (bounded routing
    /// degree); see [`crate::membership::PartialView`].  Defaults to
    /// [`crate::membership::DEFAULT_ACTIVE_VIEW`].
    pub active_view: usize,
    /// Capacity of the membership layer's passive healing reservoir.
    /// Defaults to [`crate::membership::DEFAULT_PASSIVE_VIEW`].
    pub passive_view: usize,
    /// Known-peer count above which the epidemic fabric engages (see
    /// [`Broker::epidemic_engaged`]).
    ///
    /// `None` (the default) keeps the implicit PR 9 rule — engage once the
    /// peer set outgrows [`BrokerConfig::active_view`], i.e. exactly when
    /// the views stop being complete.  `Some(n)` pins the threshold
    /// explicitly, decoupling *when* the federation goes epidemic from *how
    /// wide* its routing degree is: a deployment can hold the full-mesh
    /// fabric up to a larger backbone (`n` above the view capacity) or
    /// engage early in tests (`Some(0)` engages at any size).  Like
    /// [`BrokerConfig::full_mesh`], all brokers of one federation must
    /// agree on it — the predicate must be uniform for forwarding to work.
    pub engagement_threshold: Option<usize>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            name: "broker".to_string(),
            replication_factor: None,
            verify_workers: 0,
            inbox_capacity: None,
            apply_lanes: None,
            repair_tree: true,
            full_mesh: false,
            active_view: crate::membership::DEFAULT_ACTIVE_VIEW,
            passive_view: crate::membership::DEFAULT_PASSIVE_VIEW,
            engagement_threshold: None,
        }
    }
}

impl BrokerConfig {
    /// Convenience constructor setting only the name.
    pub fn named(name: impl Into<String>) -> Self {
        BrokerConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Convenience constructor for a sharded broker: `name` plus the shard
    /// replication factor K.
    pub fn sharded(name: impl Into<String>, replication_factor: usize) -> Self {
        BrokerConfig {
            name: name.into(),
            replication_factor: Some(replication_factor),
            ..Default::default()
        }
    }

    /// Enables the staged ingress pipeline: `workers` parallel verify
    /// workers and a bounded network inbox of `inbox_capacity` messages.
    pub fn with_pipeline(mut self, workers: usize, inbox_capacity: usize) -> Self {
        self.verify_workers = workers;
        self.inbox_capacity = Some(inbox_capacity);
        self
    }

    /// Pins the number of partitioned apply lanes (default: one lane per
    /// verify worker).  Only meaningful together with
    /// [`BrokerConfig::with_pipeline`].
    pub fn with_apply_lanes(mut self, lanes: usize) -> Self {
        self.apply_lanes = Some(lanes);
        self
    }

    /// Disables hash-tree anti-entropy, falling back to full-section
    /// snapshots on any digest mismatch.  Exists for the repair-cost
    /// experiments and the flat-vs-tree oracle tests; production brokers
    /// keep the tree.
    pub fn with_flat_repair(mut self) -> Self {
        self.repair_tree = false;
        self
    }

    /// Forces the classic full-mesh fabric at any federation size — see
    /// [`BrokerConfig::full_mesh`].  Right when the federation is small
    /// enough that O(N) per-broker fan-out is cheap, or when worst-case
    /// single-hop delivery latency matters more than backbone load.
    pub fn with_full_mesh(mut self) -> Self {
        self.full_mesh = true;
        self
    }

    /// Pins the membership view capacities (active routing degree, passive
    /// healing reservoir).  Tests use small capacities to engage the
    /// epidemic fabric in small federations; production brokers keep the
    /// defaults.
    pub fn with_view_capacities(mut self, active: usize, passive: usize) -> Self {
        self.active_view = active;
        self.passive_view = passive;
        self
    }

    /// Pins the epidemic engagement threshold: the fabric engages once the
    /// known peer count exceeds `threshold`, independent of the view
    /// capacity — see [`BrokerConfig::engagement_threshold`].
    pub fn with_engagement_threshold(mut self, threshold: usize) -> Self {
        self.engagement_threshold = Some(threshold);
        self
    }
}

/// Where the apply stage may run one decoded message — the routing decision
/// of the partitioned apply stage (see [`Broker::spawn`]).
///
/// `Lane(key)` means every state mutation the message can cause is confined
/// to the `(group, owner)` shard partition at ring position `key`
/// ([`crate::shard::shard_key`]), so it may apply on a partition lane
/// concurrently with messages of *other* partitions.  `Barrier` means the
/// message reads or writes state spanning partitions — sessions, group
/// membership, peer routing, gossip sequencing, shard queries, anti-entropy
/// — and must observe every earlier-ticket lane apply before it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyRoute {
    /// Partition-local: apply on the lane owning this shard key.
    Lane(u64),
    /// Partition-spanning: drain all lanes, then apply serialized.
    Barrier,
}

/// Classifies a decoded message for the partitioned apply stage.
///
/// Only client [`MessageKind::PublishAdvertisement`] is partition-local
/// today: its mutations are the `(group, sender)` index entry plus gossip
/// *about that entry*, and the paper's workload — file/pipe advertisement
/// churn — is exactly this kind.  Everything else (connects, logins,
/// lookups, relays, inter-broker sync/repair, the secure handshakes) is a
/// barrier: correct but serialized, the same cost it had before lanes
/// existed.  A publish without a parseable `group` element only draws a
/// rejection reply, but classifying it as a barrier keeps the lane
/// invariant — "a lane message touches exactly one partition" — trivially
/// true.
pub fn apply_route(message: &Message) -> ApplyRoute {
    match message.kind {
        MessageKind::PublishAdvertisement => match message.element_str("group") {
            Some(group) => ApplyRoute::Lane(crate::shard::shard_key(
                &GroupId::new(group),
                &message.sender,
            )),
            None => ApplyRoute::Barrier,
        },
        _ => ApplyRoute::Barrier,
    }
}

/// Work queued to one partition apply lane by the pipeline dispatcher.
enum LaneJob {
    /// Apply one decoded partition-local message.
    Apply(NetMessage, Message),
    /// Synchronisation point: acknowledge once every earlier job on this
    /// lane has fully applied.
    Barrier(crossbeam::channel::Sender<()>),
}

/// A divergent repair-tree node whose entry count (on both sides) is at or
/// below this threshold stops the hash-tree descent: shipping the entries
/// outright is cheaper than another narrowing leg.
const REPAIR_PAGE_ENTRIES: u64 = 256;

/// Entries per range-scoped snapshot page.  Pages bound the size of a repair
/// message: healing a million-entry divergence ships many pages, never one
/// million-element `Message`.
const REPAIR_PAGE_MAX: usize = 256;

/// Node summaries per descent leg (a 25 KB range message at most).
/// Divergent nodes past the budget are shipped as (coarser) pages instead
/// of descending further — massive divergence degrades toward the flat
/// snapshot cost, never to an unbounded descent message.
const REPAIR_MAX_RANGE_NODES: usize = 1024;

/// Inbox backlog (messages delivered but not yet processed) per unit of
/// SWIM local health: a broker `n ×` this far behind runs its failure
/// detector `1 + n` times slower (capped at [`crate::swim::MAX_HEALTH`]),
/// the Lifeguard insight that a node too busy to process acks in time
/// should doubt itself before accusing its peers.
const SWIM_BACKLOG_THRESHOLD: u64 = 64;

/// How many arrivals one verify worker stamps per ingress-lock acquisition.
/// Batching amortises the lock (and the wake-up of the next waiting worker)
/// across a deep inbox; only already-queued messages are taken (`try_recv`),
/// so a lone arrival is never held back waiting for company.
const INGRESS_BATCH: usize = 32;

/// Stage-1 state shared by the verify workers: the network inbox plus the
/// monotone ticket counter.  Holding the lock across `recv` + stamp is what
/// makes ticket order identical to arrival order.
struct PipelineIngress {
    receiver: crossbeam::channel::Receiver<NetMessage>,
    ticket: u64,
}

/// Stage-3 state shared by the verify workers: the ticket reorder buffer.
/// Whichever worker holds this lock is *the* dispatcher for that moment —
/// the single-router invariant the lane fast-path and barriers rely on.
struct PipelineRouter {
    next_ticket: u64,
    reorder: BTreeMap<u64, (NetMessage, Option<Message>)>,
}

/// Hook that lets the security extension handle additional message kinds.
pub trait BrokerExtension: Send + Sync {
    /// Handles `message` if it belongs to the extension.
    ///
    /// Returns `Some(response)` to send a reply back to the sender, or `None`
    /// if the message kind is not handled by this extension (the broker then
    /// replies with a generic rejection).
    fn handle(&self, broker: &Broker, message: &Message) -> Option<Message>;

    /// Stateless ingress pre-verification, run for every decoded message
    /// *before* the serialized apply stage — on a verify-pool worker when the
    /// broker is pipelined, or inline on the calling thread otherwise.
    ///
    /// The hook must not mutate broker state (several workers run it
    /// concurrently and completions are reordered before apply); its job is
    /// to spend the stateless CPU — signature and envelope checks — off the
    /// apply thread, recording results in idempotent side tables such as the
    /// verified-signature cache so the apply-stage handlers find them
    /// already paid for.  The default does nothing.
    fn preverify(&self, _broker: &Broker, _message: &Message) {}

    /// Policy hook invoked before an advertisement publish is indexed: the
    /// secure extension uses it to refuse signed advertisements whose
    /// embedded credential is expired or revoked.  Returning `Err(reason)`
    /// rejects the publish with that reason; the default accepts everything
    /// (the plain broker has no publish policy).
    fn vet_publish(
        &self,
        _broker: &Broker,
        _from: PeerId,
        _group: &GroupId,
        _doc_type: &str,
        _xml: &str,
    ) -> Result<(), String> {
        Ok(())
    }

    /// Canonical bytes summarising the extension's replicated state (e.g.
    /// the merged revocation sets), hashed into anti-entropy digests so
    /// peer brokers notice when their extension state diverged.  `None`
    /// (the default) means the extension replicates nothing.
    fn repair_digest(&self) -> Option<Vec<u8>> {
        None
    }

    /// Opaque snapshot of the extension's replicated state, shipped to peer
    /// brokers on digest mismatch (and by [`Broker::gossip_extension_state`]).
    /// The blob must be self-authenticating — the overlay provides transport
    /// and gossip admission only.
    fn repair_snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Merges a peer broker's extension snapshot into local state after
    /// verifying it.  Returns the number of entries actually added (counted
    /// as repaired in the federation metrics).
    fn apply_repair_snapshot(&self, _broker: &Broker, _blob: &[u8]) -> u64 {
        0
    }
}

/// An authenticated client session as seen by the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerSession {
    /// The authenticated end-user name.
    pub username: String,
    /// Groups the user belongs to.
    pub groups: Vec<GroupId>,
}

/// One indexed advertisement: the XML document plus its last-writer-wins
/// version.  The version is `(sequence number at the origin broker, origin
/// broker id)`: every broker keeps the entry with the greatest version, so
/// concurrent publishes of the same `(owner, doc type)` key at different
/// brokers converge to the same winner on every replica regardless of the
/// order the gossip arrives in.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexedAdvertisement {
    xml: String,
    version: (u64, PeerId),
}

/// Advertisement index for one group: (owner, doc type) → versioned XML.
type GroupAdvertisements = HashMap<(PeerId, String), IndexedAdvertisement>;

/// A flattened index entry: `(group, owner, doc type, xml, version)` — the
/// shape migration re-routes across the ring.
type FlatEntry = (GroupId, PeerId, String, String, (u64, PeerId));

/// Version of a peer's replicated presence state: `(origin sequence, kind
/// rank, origin broker)`.  Joins rank above leaves at the same sequence so a
/// leave/re-join pair racing across the backbone resolves to the join on
/// every broker.  Like the advertisement versions, any total order makes the
/// replicas converge; the ranking only picks the intuitive winner.
type PresenceVersion = (u64, u8, PeerId);

/// Rank of a leave in a [`PresenceVersion`].
const PRESENCE_LEAVE: u8 = 0;
/// Rank of a join in a [`PresenceVersion`].
const PRESENCE_JOIN: u8 = 1;

/// One gossip event queued for a peer broker: the flattened element list of
/// a single replicated write (`op`, its version `seq`, and the op-specific
/// fields).  Events are coalesced per destination into one `BrokerSync`
/// digest per flush instead of one message per event.  Keys are owned
/// because the epidemic fabric re-queues events parsed off the wire.
#[derive(Debug, Clone)]
struct GossipEvent {
    fields: Vec<(String, String)>,
}

impl GossipEvent {
    fn new(fields: Vec<(&str, String)>) -> Self {
        GossipEvent {
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    fn from_owned(fields: Vec<(String, String)>) -> Self {
        GossipEvent { fields }
    }

    /// The value of field `key`, if present.
    fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sets field `key`, replacing an existing value.
    fn set(&mut self, key: &str, value: String) {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    /// The gossip id of a broadcast event: its `(vorigin, seq)` LWW version.
    fn gossip_id(&self) -> Option<GossipId> {
        let origin = PeerId::from_urn(self.get("vorigin")?)?;
        let seq = self.get("seq")?.parse().ok()?;
        Some((origin, seq))
    }
}

/// A lookup this broker routed to remote shard replicas and has not answered
/// yet: the requesting client, its request identifier, and the merge state.
#[derive(Debug)]
struct PendingLookup {
    client: PeerId,
    client_request: u64,
    /// Replica answers still outstanding.
    remaining: usize,
    /// Advertisement results merged so far: owner → (version, xml); scatter
    /// responses from several replicas deduplicate by keeping the greatest
    /// last-writer-wins version per owner.
    adv_results: BTreeMap<PeerId, ((u64, PeerId), String)>,
    /// Membership answer (true as soon as any replica confirms membership).
    is_member: bool,
    /// Whether this pending lookup is a membership query (versus an
    /// advertisement search).
    membership: bool,
}

/// The broker peer.
pub struct Broker {
    id: PeerId,
    config: BrokerConfig,
    network: Arc<SimNetwork>,
    database: Arc<UserDatabase>,
    groups: GroupRegistry,
    /// Global advertisement index: group → (owner, doc type) → XML.
    advertisements: RwLock<HashMap<GroupId, GroupAdvertisements>>,
    /// Connected (but not necessarily logged-in) peers.
    connected: RwLock<HashMap<PeerId, ()>>,
    /// Logged-in sessions.
    sessions: RwLock<HashMap<PeerId, BrokerSession>>,
    /// Live local sessions shadowed by a remote join this broker yielded to.
    /// The connection is still open here; if the displacing origin later
    /// gossips the peer's departure, the shadowed session is resurrected
    /// (the join/leave pair proves the displacing join was a stale echo).
    displaced: RwLock<HashMap<PeerId, BrokerSession>>,
    extension: RwLock<Option<Arc<dyn BrokerExtension>>>,
    /// The other brokers of the federation backbone.  This is the complete
    /// *known* set — admission control and the shard ring always use it;
    /// the membership layer's partial views below pick the traffic targets.
    peer_brokers: RwLock<Vec<PeerId>>,
    /// HyParView-style partial views over `peer_brokers`: the bounded
    /// active view is where broadcast traffic and anti-entropy go once the
    /// epidemic fabric engages (see [`Broker::epidemic_engaged`]).
    view: Mutex<PartialView>,
    /// Plumtree eager/lazy edge sets, seen-set and graft cache over the
    /// active view.
    plumtree: Mutex<PlumtreeState>,
    /// Gossip ids pending lazy advertisement, coalesced into one
    /// `PlumtreeIHave` per destination at the next flush.
    ihave_outbox: Mutex<BTreeMap<PeerId, Vec<GossipId>>>,
    /// SWIM failure detector over the admitted peer set, ticked by the
    /// repair cadence ([`Broker::start_repair_round`]).  Confirmed deaths
    /// feed `view` / `plumtree` through [`Broker::on_swim_death`]; the
    /// admission state (`peer_brokers`, `seen_seq`) is deliberately left
    /// alone so a recovered broker re-enters by simply answering a probe.
    swim: Mutex<SwimDetector>,
    /// Which brokers host live members of each group: group → member →
    /// home broker.  Maintained from the same fully replicated join/leave
    /// gossip that feeds `peer_homes`, so it needs no extra wire traffic;
    /// sharded publishes use it to address member-hosting brokers beyond
    /// the replica set instead of broadcasting.
    group_hosts: RwLock<HashMap<GroupId, HashMap<PeerId, PeerId>>>,
    /// Which broker each remote peer is homed at (replicated via gossip).
    peer_homes: RwLock<HashMap<PeerId, PeerId>>,
    /// Last-writer-wins version of each peer's presence (join/leave) state.
    peer_versions: RwLock<HashMap<PeerId, PresenceVersion>>,
    /// Provenance version of each stored membership entry: the presence
    /// version the `(group, member)` entry was asserted under.  Anti-entropy
    /// deletion decisions compare a peer's *current* version against this —
    /// a peer strictly newer than the entry's provenance that does not list
    /// the membership proves the entry stale, while an equal version proves
    /// it current (the same join event implies the same group list).
    membership_versions: RwLock<HashMap<(GroupId, PeerId), PresenceVersion>>,
    /// Sequence number stamped on outgoing inter-broker messages.
    sync_seq: AtomicU64,
    /// Serialises sequence allocation with the wire send (see
    /// [`Broker::send_sequenced`]): several threads send on a broker's
    /// behalf (its event loop, the federation repair loop, in-process
    /// callers), and the receiver's replay protection requires their
    /// sequence numbers to arrive in allocation order.
    send_lock: Mutex<()>,
    /// Highest sequence number seen per origin broker (replay detection).
    seen_seq: RwLock<HashMap<PeerId, u64>>,
    /// Federation activity counters.
    federation: FederationMetrics,
    /// Ingress-pipeline activity counters (all zero without a pipeline).
    pipeline: PipelineMetrics,
    /// The consistent-hash ring over this broker and its federation peers
    /// (only consulted when `config.replication_factor` is set).
    ring: RwLock<ShardRing>,
    /// Gossip events queued per destination, coalesced into one `BrokerSync`
    /// digest per destination at the next [`Broker::flush_gossip`].  A
    /// `BTreeMap` keeps the flush order deterministic, which the inline
    /// federation's reproducible pumping relies on.
    outbox: Mutex<BTreeMap<PeerId, Vec<GossipEvent>>>,
    /// Lookups routed to remote shard replicas, keyed by query identifier.
    pending_lookups: Mutex<HashMap<u64, PendingLookup>>,
    /// Next shard-query identifier.
    next_query: AtomicU64,
    /// Network messages fully processed by this broker (monotone; compared
    /// against [`SimNetwork::delivered_to`] for quiescence detection).
    processed: AtomicU64,
    /// Cached repair hash trees (see [`RepairTreeCache`]), so an idle
    /// anti-entropy round costs one root digest per edge instead of
    /// re-hashing O(shard) entries per peer per round.
    repair_trees: Mutex<RepairTreeCache>,
    /// Version counter of the state the repair trees summarise.  Every
    /// mutation of the advertisement index, group membership, presence
    /// stamps or shard routing bumps it ([`Broker::touch_repair_state`]);
    /// the cache drops all trees when its recorded epoch falls behind.
    repair_epoch: AtomicU64,
}

/// Cached [`SectionTree`]s of the two shard-keyed anti-entropy sections,
/// keyed by the peer whose shared-entry filter shaped them (in full
/// replication the filter is peer-invariant, so one tree keyed by the
/// broker's own id serves every edge).  Invalidated wholesale when
/// `repair_epoch` moves: state writes are the common case and a coarse epoch
/// keeps every mutation site O(1).
#[derive(Default)]
struct RepairTreeCache {
    /// The `repair_epoch` value the cached trees were built at.
    epoch: u64,
    /// Advertisement-section trees per peer filter.
    adv: HashMap<PeerId, Arc<SectionTree>>,
    /// Membership-section trees per peer filter.
    membership: HashMap<PeerId, Arc<SectionTree>>,
}

impl Broker {
    /// Creates a broker with the given identifier.
    pub fn new(
        id: PeerId,
        config: BrokerConfig,
        network: Arc<SimNetwork>,
        database: Arc<UserDatabase>,
    ) -> Arc<Self> {
        let mut ring = ShardRing::new(config.replication_factor.unwrap_or(usize::MAX));
        ring.insert(id);
        let view = PartialView::new(id, config.active_view, config.passive_view);
        Arc::new(Broker {
            id,
            config,
            network,
            database,
            groups: GroupRegistry::new(),
            advertisements: RwLock::with_class("broker.advertisements", HashMap::new()),
            connected: RwLock::with_class("broker.connected", HashMap::new()),
            sessions: RwLock::with_class("broker.sessions", HashMap::new()),
            displaced: RwLock::with_class("broker.displaced", HashMap::new()),
            extension: RwLock::with_class("broker.extension", None),
            peer_brokers: RwLock::with_class("broker.peer_brokers", Vec::new()),
            view: Mutex::with_class("broker.view", view),
            plumtree: Mutex::with_class(
                "broker.plumtree",
                PlumtreeState::new(crate::plumtree::DEFAULT_CACHE),
            ),
            ihave_outbox: Mutex::with_class("broker.ihave_outbox", BTreeMap::new()),
            swim: Mutex::with_class("broker.swim", SwimDetector::new(id)),
            group_hosts: RwLock::with_class("broker.group_hosts", HashMap::new()),
            peer_homes: RwLock::with_class("broker.peer_homes", HashMap::new()),
            peer_versions: RwLock::with_class("broker.peer_versions", HashMap::new()),
            membership_versions: RwLock::with_class("broker.membership_versions", HashMap::new()),
            sync_seq: AtomicU64::new(0),
            send_lock: Mutex::with_class("broker.send_lock", ()),
            seen_seq: RwLock::with_class("broker.seen_seq", HashMap::new()),
            federation: FederationMetrics::new(),
            pipeline: PipelineMetrics::new(),
            ring: RwLock::with_class("broker.ring", ring),
            outbox: Mutex::with_class("broker.outbox", BTreeMap::new()),
            pending_lookups: Mutex::with_class("broker.pending_lookups", HashMap::new()),
            next_query: AtomicU64::new(1),
            processed: AtomicU64::new(0),
            repair_trees: Mutex::with_class("broker.repair_trees", RepairTreeCache::default()),
            repair_epoch: AtomicU64::new(0),
        })
    }

    /// The broker's peer identifier (its "well-known" address).
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The broker's configuration.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// The network this broker is attached to.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The central user database (brokers are the only entities allowed to
    /// touch it).
    pub fn database(&self) -> &Arc<UserDatabase> {
        &self.database
    }

    /// The broker's group registry.
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Installs the security extension.
    pub fn set_extension(&self, extension: Arc<dyn BrokerExtension>) {
        *self.extension.write() = Some(extension);
    }

    // ------------------------------------------------------------------
    // Federation membership and routing
    // ------------------------------------------------------------------

    /// Registers another broker as a peer of the federation backbone.
    /// Gossip is sent to — and accepted from — peer brokers only.  The peer
    /// also joins this broker's shard ring; callers changing the membership
    /// of a running sharded federation should follow up with
    /// [`Broker::reshard`] to migrate entries onto their new replicas.
    pub fn add_peer_broker(&self, broker: PeerId) {
        if broker == self.id {
            return;
        }
        {
            let mut peers = self.peer_brokers.write();
            if peers.contains(&broker) {
                return;
            }
            peers.push(broker);
            self.ring.write().insert(broker);
            // The ring changed, so the set of entries shared with each peer
            // changed with it.
            self.touch_repair_state();
        }
        let active = {
            let mut view = self.view.lock();
            view.on_join(broker);
            view.active()
        };
        self.plumtree.lock().sync_active(&active);
        let peers = self.peer_brokers.read().clone();
        self.swim.lock().sync_members(&peers);
    }

    /// Removes a broker from the federation backbone and the shard ring.
    /// The departed broker's clients are gone with it, so their routes *and*
    /// their replicated group memberships are dropped (a crashed broker
    /// never gossips their leaves — without this cleanup they would stay
    /// ghost members forever).  Entry migration is the caller's job via
    /// [`Broker::reshard`].  Lookups awaiting a shard answer are resolved
    /// with whatever merged so far: the awaited replica may be the one that
    /// just left, and an unanswered client would otherwise only see its own
    /// timeout (and the pending entry would leak).
    pub fn remove_peer_broker(&self, broker: &PeerId) {
        self.touch_repair_state();
        self.peer_brokers.write().retain(|b| b != broker);
        self.ring.write().remove(broker);
        self.seen_seq.write().remove(broker);
        self.outbox.lock().remove(broker);
        // Every survivor performs the identical cleanup, so the replicated
        // state stays consistent without any gossip from the dead broker.
        let orphans: Vec<PeerId> = {
            let homes = self.peer_homes.read();
            homes
                .iter()
                .filter(|(_, home)| *home == broker)
                .map(|(peer, _)| *peer)
                .collect()
        };
        for peer in orphans {
            self.groups.leave_all(&peer);
            self.forget_membership_stamps(&peer);
            self.connected.write().remove(&peer);
            self.displaced.write().remove(&peer);
        }
        self.peer_homes.write().retain(|_, home| home != broker);
        let stranded: Vec<PendingLookup> = {
            let mut pending = self.pending_lookups.lock();
            std::mem::take(&mut *pending).into_values().collect()
        };
        for state in stranded {
            self.finish_pending_lookup(state);
        }
        let active = {
            let mut view = self.view.lock();
            view.on_failure(broker);
            view.active()
        };
        self.plumtree.lock().sync_active(&active);
        self.ihave_outbox.lock().remove(broker);
        let peers = self.peer_brokers.read().clone();
        self.swim.lock().sync_members(&peers);
        // The dead broker's hosted members left with it (mirrors the
        // peer_homes cleanup above).
        for hosts in self.group_hosts.write().values_mut() {
            hosts.retain(|_, home| home != broker);
        }
    }

    /// The configured shard replication factor (`None` = full replication).
    pub fn replication_factor(&self) -> Option<usize> {
        self.config.replication_factor
    }

    /// Returns `true` when this broker partitions the index/membership state
    /// across the shard ring instead of fully replicating it.
    fn is_sharded(&self) -> bool {
        self.config.replication_factor.is_some()
    }

    /// The replica set of `(group, owner)` on this broker's shard ring (in
    /// full-replication mode: this broker plus every peer).
    pub fn shard_replicas(&self, group: &GroupId, owner: &PeerId) -> Vec<PeerId> {
        self.ring.read().replicas(group, owner)
    }

    /// Returns `true` if this broker must store the `(group, owner)` entry:
    /// always in full-replication mode, only as a ring replica when sharded.
    fn is_local_replica(&self, group: &GroupId, owner: &PeerId) -> bool {
        !self.is_sharded() || self.ring.read().is_replica(group, owner, &self.id)
    }

    /// Number of advertisements currently held in the local index (the
    /// quantity the sharding experiments show dropping from O(total) to
    /// O(total·K/N) per broker).
    pub fn advertisement_entry_count(&self) -> usize {
        self.advertisements.read().values().map(HashMap::len).sum()
    }

    /// The other brokers of the federation this broker gossips with.
    pub fn peer_brokers(&self) -> Vec<PeerId> {
        self.peer_brokers.read().clone()
    }

    /// Returns `true` if `peer` is a known peer broker of the federation.
    pub fn is_peer_broker(&self, peer: &PeerId) -> bool {
        self.peer_brokers.read().contains(peer)
    }

    /// Whether the epidemic fabric is active: the broker is not pinned to
    /// full mesh and the known peer set has outgrown the engagement
    /// threshold (the active-view capacity unless
    /// [`BrokerConfig::engagement_threshold`] pins it), so the view is a
    /// strict subset and broadcasts must be forwarded.  The predicate
    /// depends only on configuration and the (replicated) peer count, so
    /// every broker of a federation reaches the same answer — which the
    /// forwarding protocol needs: a broker that pushed eagerly must be able
    /// to rely on its neighbours pushing onward.
    pub fn epidemic_engaged(&self) -> bool {
        !self.config.full_mesh
            && self.peer_brokers.read().len()
                > self
                    .config
                    .engagement_threshold
                    .unwrap_or(self.config.active_view)
    }

    /// The peer brokers that broadcast gossip, anti-entropy and extension
    /// state target: the bounded active view once the epidemic fabric is
    /// engaged, the complete peer set otherwise.
    fn repair_targets(&self) -> Vec<PeerId> {
        if self.epidemic_engaged() {
            self.view.lock().active()
        } else {
            self.peer_brokers()
        }
    }

    /// The membership layer's current active view (complete below the view
    /// capacity), for tests and diagnostics.
    pub fn active_view(&self) -> Vec<PeerId> {
        self.view.lock().active()
    }

    /// The Plumtree eager (tree) edges, for tests and diagnostics.
    pub fn epidemic_eager_peers(&self) -> Vec<PeerId> {
        self.plumtree.lock().eager()
    }

    /// The Plumtree lazy (digest-only) edges, for tests and diagnostics.
    pub fn epidemic_lazy_peers(&self) -> Vec<PeerId> {
        self.plumtree.lock().lazy()
    }

    /// Records `member` as hosted at `home` for each listed group.
    fn set_group_hosts(&self, member: &PeerId, groups: &[GroupId], home: PeerId) {
        let mut hosts = self.group_hosts.write();
        for group in groups {
            hosts.entry(group.clone()).or_default().insert(*member, home);
        }
    }

    /// Drops `member` from every group's host digest.
    fn clear_group_hosts(&self, member: &PeerId) {
        let mut hosts = self.group_hosts.write();
        for members in hosts.values_mut() {
            members.remove(member);
        }
        hosts.retain(|_, members| !members.is_empty());
    }

    /// The brokers hosting at least one live member of `group`, per the
    /// replicated join/leave digest (never includes this broker itself).
    pub fn group_host_brokers(&self, group: &GroupId) -> Vec<PeerId> {
        let hosts = self.group_hosts.read();
        let mut out: Vec<PeerId> = hosts
            .get(group)
            .map(|members| members.values().copied().collect())
            .unwrap_or_default();
        out.sort();
        out.dedup();
        out.retain(|b| *b != self.id);
        out
    }

    /// Federation activity counters (gossip, relays, rejected traffic).
    pub fn federation_stats(&self) -> FederationStats {
        self.federation.snapshot()
    }

    /// Ingress-pipeline activity counters (batch sizes, reorder waits).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.snapshot()
    }

    /// Peers currently connected to this broker (logged in or not) — the
    /// audience of broker-initiated pushes such as federation credential
    /// updates.
    pub fn client_peers(&self) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self.connected.read().keys().copied().collect();
        for peer in self.sessions.read().keys() {
            if !peers.contains(peer) {
                peers.push(*peer);
            }
        }
        peers.sort();
        peers
    }

    /// The broker a peer is homed at: this broker for local sessions, the
    /// gossip-replicated home broker for peers joined elsewhere.
    pub fn home_of(&self, peer: &PeerId) -> Option<PeerId> {
        if self.sessions.read().contains_key(peer) {
            return Some(self.id);
        }
        self.peer_homes.read().get(peer).copied()
    }

    /// Deterministic snapshot of the advertisement index, used by the
    /// federation's replication-convergence checks.
    pub fn advertisement_snapshot(&self) -> Vec<(GroupId, PeerId, String, String)> {
        let advertisements = self.advertisements.read();
        let mut out = Vec::new();
        for (group, index) in advertisements.iter() {
            for ((owner, doc_type), adv) in index.iter() {
                out.push((group.clone(), *owner, doc_type.clone(), adv.xml.clone()));
            }
        }
        out.sort();
        out
    }

    /// Like [`Broker::advertisement_snapshot`] but reporting each entry's
    /// last-writer-wins version instead of its XML — what the repair tests
    /// use to prove anti-entropy never regresses a newer write.
    pub fn advertisement_versions(&self) -> Vec<(GroupId, PeerId, String, (u64, PeerId))> {
        let advertisements = self.advertisements.read();
        let mut out = Vec::new();
        for (group, index) in advertisements.iter() {
            for ((owner, doc_type), adv) in index.iter() {
                out.push((group.clone(), *owner, doc_type.clone(), adv.version));
            }
        }
        out.sort();
        out
    }

    /// Deterministic snapshot of the peer→home-broker routing table (local
    /// sessions map to this broker itself).
    pub fn routing_snapshot(&self) -> Vec<(PeerId, PeerId)> {
        let mut out: Vec<(PeerId, PeerId)> = self
            .sessions
            .read()
            .keys()
            .map(|peer| (*peer, self.id))
            .collect();
        out.extend(self.peer_homes.read().iter().map(|(p, h)| (*p, *h)));
        out.sort();
        out
    }

    /// Returns `true` if `peer` completed the connect step.
    pub fn is_connected(&self, peer: &PeerId) -> bool {
        self.connected.read().contains_key(peer)
    }

    /// Returns the session of a logged-in peer.
    pub fn session(&self, peer: &PeerId) -> Option<BrokerSession> {
        self.sessions.read().get(peer).cloned()
    }

    /// Number of logged-in peers.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Marks a peer as connected (used by both the plain handler and the
    /// secure extension).
    pub fn mark_connected(&self, peer: PeerId) {
        self.connected.write().insert(peer, ());
    }

    /// Records a successful login and joins the user's groups.  Returns the
    /// created session and replicates it to the federation (the peer is now
    /// homed here).
    pub fn establish_session(&self, peer: PeerId, username: &str) -> BrokerSession {
        let groups = self.database.groups_of(username);
        for g in &groups {
            self.groups.join(g.clone(), peer);
        }
        let session = BrokerSession {
            username: username.to_string(),
            groups: groups.clone(),
        };
        self.sessions.write().insert(peer, session.clone());
        // If the peer previously logged in at another broker, this broker is
        // its home now; a fresh login also supersedes any shadowed session.
        self.peer_homes.write().remove(&peer);
        self.displaced.write().remove(&peer);
        let seq = self.version_local_presence(peer, PRESENCE_JOIN);
        for g in &groups {
            self.stamp_membership(g, peer, (seq, PRESENCE_JOIN, self.id));
        }
        self.set_group_hosts(&peer, &groups, self.id);
        self.touch_repair_state();
        self.gossip_join(seq, peer, &groups);
        self.flush_gossip();
        session
    }

    /// Removes a peer's session and group memberships (logout / departure)
    /// and replicates the departure to the federation.
    pub fn drop_session(&self, peer: &PeerId) {
        let had_session = self.sessions.write().remove(peer).is_some();
        self.connected.write().remove(peer);
        self.displaced.write().remove(peer);
        self.groups.leave_all(peer);
        self.forget_membership_stamps(peer);
        self.clear_group_hosts(peer);
        self.touch_repair_state();
        if had_session {
            let peer = *peer;
            let seq = self.version_local_presence(peer, PRESENCE_LEAVE);
            self.gossip_to_all(GossipEvent::new(vec![
                ("op", "leave".to_string()),
                ("seq", seq.to_string()),
                ("peer", peer.to_urn()),
            ]));
            self.flush_gossip();
        }
    }

    /// Records a local join/leave in the presence register and returns the
    /// sequence number it was versioned (and must be gossiped) under.  The
    /// sequence is floored above the stored version so the local write — the
    /// authoritative one, the client is talking to *this* broker — wins.
    fn version_local_presence(&self, peer: PeerId, rank: u8) -> u64 {
        let floor = self
            .peer_versions
            .read()
            .get(&peer)
            .map(|version| version.0 + 1)
            .unwrap_or(1);
        self.sync_seq.fetch_max(floor - 1, Ordering::Relaxed);
        let seq = self.next_sync_seq();
        self.peer_versions.write().insert(peer, (seq, rank, self.id));
        seq
    }

    /// Records the provenance version of a stored membership entry.
    /// Bumps the repair epoch itself: a caller cannot forget and serve a
    /// stale membership tree (over-bumping is O(1) and harmless).
    fn stamp_membership(&self, group: &GroupId, member: PeerId, version: PresenceVersion) {
        self.membership_versions
            .write()
            .insert((group.clone(), member), version);
        self.touch_repair_state();
    }

    /// Drops every membership provenance stamp of `peer` (paired with the
    /// `leave_all` that cleared its memberships).
    fn forget_membership_stamps(&self, peer: &PeerId) {
        self.membership_versions
            .write()
            .retain(|(_, member), _| member != peer);
        self.touch_repair_state();
    }

    /// The provenance version of a stored membership entry (falling back to
    /// the peer's presence version, then to a floor that loses every
    /// comparison).
    fn membership_stamp(&self, group: &GroupId, member: &PeerId) -> PresenceVersion {
        if let Some(stamp) = self
            .membership_versions
            .read()
            .get(&(group.clone(), *member))
        {
            return *stamp;
        }
        self.peer_versions
            .read()
            .get(member)
            .copied()
            .unwrap_or((0, PRESENCE_LEAVE, *member))
    }

    /// Applies the local side effects of a remote JOIN (the peer is homed
    /// elsewhere now), shared by gossip application and anti-entropy repair:
    /// live-session arbitration plus session/connection cleanup.  When the
    /// peer is demonstrably logged in *here* — local ground truth the remote
    /// join cannot know about — the lower broker id re-asserts (so a stale
    /// join arriving late cannot ghost a live client) and the higher one
    /// yields but *shadows* the still-open session instead of forgetting it;
    /// exactly one side backs down, so the exchange always terminates.
    /// Returns `true` when the event was absorbed by a re-assert and the
    /// caller must stop applying it.
    fn yield_to_remote_join(&self, peer: PeerId, origin: PeerId) -> bool {
        if let Some(session) = self.session(&peer) {
            if self.id < origin {
                self.reassert_session(peer, &session);
                return true;
            }
            self.displaced.write().insert(peer, session);
        }
        self.sessions.write().remove(&peer);
        self.connected.write().remove(&peer);
        // The sessions map shapes the membership-filter side of the repair
        // trees; bump here so the yield itself can never serve stale digests.
        self.touch_repair_state();
        false
    }

    /// Applies the local side effects of a remote LEAVE, shared by gossip
    /// application and anti-entropy repair.  A leave echoing an older home
    /// must not log out a peer that is live here, so a live session is
    /// re-asserted unconditionally (the leaver holds no session and never
    /// counter-asserts).  A *shadowed* session is resurrected instead: the
    /// peer's global state just became "gone", yet its connection here is
    /// still open, which proves the join we yielded to was a stale echo of a
    /// completed login/logout episode.  Returns `true` when the event was
    /// absorbed and the caller must stop applying it.
    fn absorb_remote_leave(&self, peer: PeerId) -> bool {
        if let Some(session) = self.session(&peer) {
            self.reassert_session(peer, &session);
            return true;
        }
        if let Some(session) = self.displaced.write().remove(&peer) {
            self.sessions.write().insert(peer, session.clone());
            self.reassert_session(peer, &session);
            return true;
        }
        self.connected.write().remove(&peer);
        self.touch_repair_state();
        false
    }

    /// Applies `version` to the presence register if it is newer than the
    /// stored one.  Returns `false` when the incoming write is stale.
    fn try_version_presence(&self, peer: PeerId, version: PresenceVersion) -> bool {
        let mut versions = self.peer_versions.write();
        match versions.entry(peer) {
            std::collections::hash_map::Entry::Occupied(mut stored) => {
                if version <= *stored.get() {
                    return false;
                }
                stored.insert(version);
                true
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(version);
                true
            }
        }
    }

    /// Stores an advertisement in the shard (or, in full-replication mode,
    /// the global index), pushes it to the other *locally homed* members of
    /// the group and replicates it to the entry's replica brokers — all peer
    /// brokers when fully replicated, only the K ring replicas when sharded.
    /// Returns the number of local peers it was pushed to.
    ///
    /// Push semantics differ between the modes: with full replication every
    /// broker applies the gossip and pushes to its local members, so every
    /// member receives exactly one push.  Sharded, the publish is addressed
    /// to the entry's K ring replicas **plus** the brokers the group-host
    /// digest ([`Broker::group_host_brokers`]) lists as homing a live member
    /// of the group — those apply without storing and push to their members,
    /// so the fan-out is O(K + hosting brokers) per publish instead of
    /// O(brokers), and brokers hosting nobody in the group see no traffic.
    /// The digest is itself replicated gossip, so a broker whose hosts view
    /// lags can briefly miss a push; lookups (`resolve_pipe` and friends)
    /// remain the authoritative path.
    pub fn index_and_distribute(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
    ) -> usize {
        // The gossip's sequence number doubles as the entry's last-writer-
        // wins version, so the local write and its replicas carry the
        // identical version on every broker.
        let seq = self.next_sync_seq();
        let store = self.is_local_replica(group, &from);
        let pushed = self.apply_publish(from, group, doc_type, xml, (seq, self.id), store);
        let event = GossipEvent::new(vec![
            ("op", "publish".to_string()),
            ("seq", seq.to_string()),
            ("group", group.as_str().to_string()),
            ("doc-type", doc_type.to_string()),
            ("owner", from.to_urn()),
            ("xml", xml.to_string()),
        ]);
        let fanout = if self.is_sharded() {
            let mut targets: Vec<PeerId> = self
                .shard_replicas(group, &from)
                .into_iter()
                .chain(self.group_host_brokers(group))
                .filter(|broker| *broker != self.id)
                .collect();
            targets.sort();
            targets.dedup();
            self.gossip_to(&targets, event);
            targets.len()
        } else {
            self.gossip_to_all(event)
        };
        self.federation.count_publish_fanout(fanout as u64);
        self.flush_gossip();
        pushed
    }

    /// Indexes an advertisement (when `store` — the origin of a sharded
    /// publish may not be one of the entry's replicas) and pushes it to
    /// locally homed group members, without gossiping; shared by the local
    /// publish path and the gossip application path.  A stored entry is only
    /// replaced when `version` is greater than the stored one (last-writer-
    /// wins convergence).
    fn apply_publish(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
        version: (u64, PeerId),
        store: bool,
    ) -> usize {
        if store && !self.store_advertisement(from, group, doc_type, xml, version) {
            // A concurrent write with a greater version already won; dropping
            // this one keeps all replicas equal.
            return 0;
        }
        self.push_to_local_members(from, group, doc_type, xml)
    }

    /// Inserts (or LWW-replaces) an advertisement in the local index.
    /// Returns `false` when a write with a greater-or-equal version is
    /// already stored — the shared no-regression rule of gossip application
    /// and anti-entropy repair.
    fn store_advertisement(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
        version: (u64, PeerId),
    ) -> bool {
        let mut advertisements = self.advertisements.write();
        let entry = advertisements
            .entry(group.clone())
            .or_default()
            .entry((from, doc_type.to_string()));
        use std::collections::hash_map::Entry;
        match entry {
            Entry::Occupied(mut stored) => {
                if version <= stored.get().version {
                    return false;
                }
                stored.insert(IndexedAdvertisement {
                    xml: xml.to_string(),
                    version,
                });
            }
            Entry::Vacant(slot) => {
                slot.insert(IndexedAdvertisement {
                    xml: xml.to_string(),
                    version,
                });
            }
        }
        drop(advertisements);
        self.touch_repair_state();
        true
    }

    /// Seeds one advertisement directly into the local index with an
    /// explicit version — no gossip, no client push.  Benchmarks and tests
    /// use it to build large identical (or deliberately divergent) replicas
    /// without paying the federation round-trips.  Returns `false` when an
    /// equal-or-newer version is already stored (same LWW rule as a
    /// replicated write).
    pub fn load_advertisement(
        &self,
        owner: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
        version: (u64, PeerId),
    ) -> bool {
        self.store_advertisement(owner, group, doc_type, xml, version)
    }

    /// Pushes an advertisement to the locally homed members of its group
    /// (everyone but the owner).  Returns the number of peers pushed to.
    fn push_to_local_members(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
    ) -> usize {
        let local: Vec<PeerId> = {
            let sessions = self.sessions.read();
            self.groups
                .members(group)
                .into_iter()
                .filter(|member| *member != from && sessions.contains_key(member))
                .collect()
        };
        let mut pushed = 0;
        for member in local {
            let push = Message::new(MessageKind::AdvertisementPush, self.id, 0)
                .with_str("group", group.as_str())
                .with_str("doc-type", doc_type)
                .with_str("xml", xml);
            // lint:allow(accounted-send, client-facing push to a locally attached member)
            if self.network.send(self.id, member, push.to_bytes()).is_ok() {
                pushed += 1;
            }
        }
        pushed
    }

    // ------------------------------------------------------------------
    // Federation gossip
    // ------------------------------------------------------------------

    /// Allocates the next outgoing inter-broker sequence number.
    fn next_sync_seq(&self) -> u64 {
        self.sync_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stamps `message` with the next inter-broker sequence number and sends
    /// it, holding the send lock so allocation order and wire order agree.
    /// Without the lock, two threads sending on this broker's behalf could
    /// allocate seqs S and S+1 yet deliver S+1 first — the receiver's replay
    /// protection would then reject the genuine message carrying S.
    /// Returns the wire size of the sent message, `None` when the send
    /// failed — callers attributing bandwidth (repair accounting) need the
    /// size *after* the sequence element was appended.
    fn send_sequenced(&self, to: PeerId, mut message: Message, carried_wire: Duration) -> Option<usize> {
        let _guard = self.send_lock.lock();
        let seq = self.next_sync_seq();
        message.push_element("seq", seq.to_string().into_bytes());
        let bytes = message.to_bytes();
        let size = bytes.len();
        self.network
            // lint:allow(accounted-send, the sequencing choke point itself)
            .forward(self.id, to, bytes, carried_wire)
            .ok()
            .map(|_| size)
    }

    /// Queues a broadcast gossip event for the federation and returns the
    /// number of brokers it was queued to directly (the origin's fan-out).
    ///
    /// Full mesh (or a federation small enough that the active view is
    /// complete): queued to every peer broker, exactly the old behaviour.
    /// Epidemic: the event is stamped with its version origin and a
    /// broadcast marker, recorded as seen and cached for grafts, queued
    /// eagerly only to the Plumtree tree edges, and advertised as an
    /// `IHave` on the lazy edges at the next flush — receivers forward it
    /// onward (see [`Broker::handle_sync`]), which is what caps this
    /// broker's fan-out at the view size.
    fn gossip_to_all(&self, mut event: GossipEvent) -> usize {
        if !self.epidemic_engaged() {
            let peers = self.peer_brokers.read().clone();
            self.gossip_to(&peers, event);
            return peers.len();
        }
        event.set("vorigin", self.id.to_urn());
        event.set("bcast", "1".to_string());
        let Some(gid) = event.gossip_id() else {
            // No parseable version: fall back to direct delivery rather
            // than lose the event (forwarders could not dedup it).
            let peers = self.peer_brokers.read().clone();
            self.gossip_to(&peers, event);
            return peers.len();
        };
        let (eager, lazy) = {
            let mut tree = self.plumtree.lock();
            tree.note_seen(gid);
            tree.cache_event(gid, event.fields.clone());
            (tree.eager(), tree.lazy())
        };
        self.gossip_to(&eager, event);
        self.federation.count_eager_pushes(eager.len() as u64);
        if !lazy.is_empty() {
            let mut ihaves = self.ihave_outbox.lock();
            for peer in &lazy {
                ihaves.entry(*peer).or_default().push(gid);
            }
        }
        eager.len()
    }

    /// Queues a gossip event for each broker in `targets`.  Nothing is sent
    /// yet: events are coalesced per destination and shipped as one digest
    /// per destination by [`Broker::flush_gossip`].
    fn gossip_to(&self, targets: &[PeerId], event: GossipEvent) {
        if targets.is_empty() {
            return;
        }
        let mut outbox = self.outbox.lock();
        for target in targets {
            if *target == self.id {
                continue;
            }
            outbox.entry(*target).or_default().push(event.clone());
        }
    }

    /// Ships every queued gossip event: one `BrokerSync` digest per
    /// destination, however many events accumulated for it.  Every public
    /// operation that gossips flushes before returning (so a single publish
    /// still costs a single message, exactly as before), but an operation
    /// that produces many events — a shard migration, a batched sync
    /// application — pays one backbone message per destination instead of
    /// one per event.
    pub fn flush_gossip(&self) {
        let batches: Vec<(PeerId, Vec<GossipEvent>)> = {
            let mut outbox = self.outbox.lock();
            std::mem::take(&mut *outbox).into_iter().collect()
        };
        for (destination, events) in batches {
            let mut digest = Message::new(MessageKind::BrokerSync, self.id, 0)
                .with_str("count", &events.len().to_string());
            for (i, event) in events.iter().enumerate() {
                for (field, value) in &event.fields {
                    digest.push_element(format!("e{i}-{field}"), value.as_bytes().to_vec());
                }
            }
            if self.send_sequenced(destination, digest, Duration::ZERO).is_some() {
                self.federation.count_sync_sent();
            }
        }
    }

    /// Ships the pending lazy-edge advertisements: one coalesced
    /// `PlumtreeIHave` digest per destination — the gossip ids only, so a
    /// lazy edge costs bytes proportional to the event count, not the
    /// payload size.
    ///
    /// Unlike the payload digests (flushed by every gossiping operation so
    /// a publish keeps its one-message cost), the `IHave` queue drains only
    /// on the repair cadence ([`Broker::start_repair_round`]): lazy edges
    /// exist for tree repair, and repair latency is already bounded by that
    /// cadence, so advertising per-publish bought nothing but messages.
    /// Batching across publishes makes a busy tick cost one digest per lazy
    /// edge instead of one per publish; the sends avoided are counted as
    /// `ihave_digests_saved`.
    pub fn flush_ihaves(&self) {
        let ihaves: Vec<(PeerId, Vec<GossipId>)> = {
            let mut outbox = self.ihave_outbox.lock();
            std::mem::take(&mut *outbox).into_iter().collect()
        };
        for (destination, gids) in ihaves {
            // Per-publish flushing would have shipped each id in its own
            // digest; coalescing n ids saves n-1 sends to this destination.
            self.federation
                .count_ihave_digests_saved(gids.len().saturating_sub(1) as u64);
            let mut digest = Message::new(MessageKind::PlumtreeIHave, self.id, 0)
                .with_str("count", &gids.len().to_string());
            for (i, (origin, seq)) in gids.iter().enumerate() {
                digest.push_element(format!("g{i}-origin"), origin.to_urn().into_bytes());
                digest.push_element(format!("g{i}-seq"), seq.to_string().into_bytes());
            }
            if self.send_sequenced(destination, digest, Duration::ZERO).is_some() {
                self.federation.count_ihave_sent();
            }
        }
    }

    /// Admission control for inter-broker traffic: the origin must be a
    /// known peer broker, it must match the transport-level sender (when the
    /// message arrived over the network rather than being handed in
    /// directly), and the sequence number must be fresh.  Rejections are
    /// counted (they are what the cross-broker attack tests assert on).
    ///
    /// This models the connection-oriented trust of a real backbone (a
    /// broker knows which TLS/TCP link a message arrived on); an adversary
    /// spoofing *both* identities is only stopped by the end-to-end
    /// cryptography of the secure extension, never by the overlay.
    fn accept_from_peer_broker(
        &self,
        origin: PeerId,
        transport_from: Option<PeerId>,
        seq: Option<String>,
    ) -> Option<u64> {
        if transport_from.is_some_and(|from| from != origin) || !self.is_peer_broker(&origin) {
            self.federation.count_rejected_unknown_origin();
            return None;
        }
        let Some(seq) = seq.and_then(|s| s.parse::<u64>().ok()) else {
            self.federation.count_rejected_replayed();
            return None;
        };
        // Lamport merge: pull the local sequence counter past every observed
        // remote sequence number, so subsequent *local* writes always
        // version-dominate the remote writes this broker has already seen —
        // without it, a fresh local publish on a quiet broker would lose the
        // LWW comparison against a replica from a busier broker.
        self.sync_seq.fetch_max(seq, Ordering::Relaxed);
        let mut seen = self.seen_seq.write();
        let last = seen.entry(origin).or_insert(0);
        if seq <= *last {
            self.federation.count_rejected_replayed();
            return None;
        }
        *last = seq;
        Some(seq)
    }

    /// Applies one incoming gossip message to local state.  Two wire shapes
    /// are understood: the coalesced digest (`count` element, events in
    /// `e{i}-*` fields, each carrying its own version `seq`) that this
    /// implementation sends, and the PR 2 single-event layout (`op` at the
    /// top level, the transport `seq` doubling as the version) for
    /// compatibility with captured traffic and hand-built test messages.
    fn handle_sync(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let origin = message.sender;
        let epidemic = self.epidemic_engaged();
        let mut broadcasts = 0usize;
        let mut duplicates = 0usize;
        if let Some(count) = message
            .element_str("count")
            .and_then(|c| c.parse::<usize>().ok())
        {
            // One name→content index up front: per-field `element` scans
            // would make applying an n-event digest O(n²).
            let index = message.index();
            for i in 0..count {
                // Epidemic bookkeeping first: a broadcast event (it carries
                // its gossip id in `vorigin`/`seq` plus the `bcast` marker)
                // is deduplicated on the seen-set, cached for grafts, and
                // re-queued onward — eager edges get the payload, lazy
                // edges an `IHave` at the flush below.  Application itself
                // stays on the byte-faithful closure over the wire message.
                let gid = if epidemic
                    && index.get(&format!("e{i}-bcast")) == Some(b"1".as_slice())
                {
                    index
                        .get_str(&format!("e{i}-vorigin"))
                        .and_then(|urn| PeerId::from_urn(&urn))
                        .zip(
                            index
                                .get_str(&format!("e{i}-seq"))
                                .and_then(|s| s.parse::<u64>().ok()),
                        )
                } else {
                    None
                };
                if let Some(gid) = gid {
                    broadcasts += 1;
                    let fresh = self.plumtree.lock().note_seen(gid);
                    if !fresh {
                        duplicates += 1;
                        continue;
                    }
                    let prefix = format!("e{i}-");
                    let fields: Vec<(String, String)> = message
                        .elements
                        .iter()
                        .filter_map(|element| {
                            element.name.strip_prefix(&prefix).map(|field| {
                                (
                                    field.to_string(),
                                    String::from_utf8_lossy(&element.content).into_owned(),
                                )
                            })
                        })
                        .collect();
                    let (eager, lazy) = {
                        let mut tree = self.plumtree.lock();
                        tree.cache_event(gid, fields.clone());
                        (tree.eager(), tree.lazy())
                    };
                    let forward: Vec<PeerId> = eager
                        .into_iter()
                        .filter(|p| *p != origin && *p != gid.0)
                        .collect();
                    self.gossip_to(&forward, GossipEvent::from_owned(fields));
                    self.federation.count_eager_pushes(forward.len() as u64);
                    if !lazy.is_empty() {
                        let mut ihaves = self.ihave_outbox.lock();
                        for peer in lazy {
                            if peer != origin && peer != gid.0 {
                                ihaves.entry(peer).or_default().push(gid);
                            }
                        }
                    }
                }
                self.apply_sync_event(origin, &|field: &str| {
                    index.get(&format!("e{i}-{field}")).map(<[u8]>::to_vec)
                });
            }
        } else {
            self.apply_sync_event(origin, &|field: &str| {
                message.element(field).map(<[u8]>::to_vec)
            });
        }
        // A digest made entirely of already-seen broadcasts means this edge
        // duplicates the tree: demote it to lazy and tell the sender to
        // prune its side too.
        if epidemic && broadcasts > 0 && duplicates == broadcasts {
            self.plumtree.lock().demote(origin);
            let prune = Message::new(MessageKind::PlumtreePrune, self.id, 0);
            if self.send_sequenced(origin, prune, Duration::ZERO).is_some() {
                self.federation.count_prune_sent();
            }
        }
        // Applying events may have re-asserted live local sessions; ship the
        // resulting gossip (and any forwarded broadcasts) in one digest per
        // destination.
        self.flush_gossip();
    }

    /// Applies a single replicated write.  `raw` resolves the event's fields
    /// (either top-level elements or the `e{i}-` slice of a digest) as raw
    /// bytes; textual fields are decoded through the local `get` helper.
    fn apply_sync_event(&self, origin: PeerId, raw: &dyn Fn(&str) -> Option<Vec<u8>>) {
        let get = |field: &str| raw(field).map(|b| String::from_utf8_lossy(&b).into_owned());
        let Some(seq) = get("seq").and_then(|s| s.parse::<u64>().ok()) else {
            return;
        };
        match get("op").as_deref() {
            Some("publish") => {
                let (Some(group), Some(doc_type), Some(owner), Some(xml)) = (
                    get("group"),
                    get("doc-type"),
                    get("owner"),
                    get("xml"),
                ) else {
                    return;
                };
                let Some(owner) = PeerId::from_urn(&owner) else {
                    return;
                };
                // Migrated entries keep their original version: the version
                // origin travels with the event and may differ from the
                // broker that re-routed it here.
                let version_origin = get("vorigin")
                    .and_then(|urn| PeerId::from_urn(&urn))
                    .unwrap_or(origin);
                let group = GroupId::new(group);
                // A broker outside the replica set can still receive the
                // publish: group-aware routing addresses member-hosting
                // brokers so they push to their local members.  They apply
                // without storing — `sharded_converged` checks the entry
                // lives on exactly its ring replicas.
                let store = self.is_local_replica(&group, &owner);
                self.apply_publish(owner, &group, &doc_type, &xml, (seq, version_origin), store);
                self.federation.count_sync_applied();
            }
            Some("join") => {
                let Some(peer) = get("peer").and_then(|urn| PeerId::from_urn(&urn)) else {
                    return;
                };
                // The joining peer's home is the broker that versioned the
                // event.  Under the epidemic fabric the transport sender may
                // be a forwarder, so the event carries the home explicitly;
                // the direct-delivery layouts fall back to the sender.
                let home = get("vorigin")
                    .and_then(|urn| PeerId::from_urn(&urn))
                    .unwrap_or(origin);
                if !self.try_version_presence(peer, (seq, PRESENCE_JOIN, home)) {
                    return; // a newer local or replicated write already won
                }
                if self.yield_to_remote_join(peer, home) {
                    return;
                }
                // The peer is homed at `home` now; any local session for it
                // was stale (the peer re-homed to another broker).
                self.groups.leave_all(&peer);
                self.forget_membership_stamps(&peer);
                self.clear_group_hosts(&peer);
                self.peer_homes.write().insert(peer, home);
                for group in get("groups")
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    let group = GroupId::new(group);
                    // Every broker records which broker hosts the member (the
                    // group-aware publish routing digest) …
                    self.set_group_hosts(&peer, std::slice::from_ref(&group), home);
                    // … but sharded membership entries live on their ring
                    // replicas only; the routing updates are applied by
                    // every broker either way.
                    if self.is_local_replica(&group, &peer) {
                        self.stamp_membership(&group, peer, (seq, PRESENCE_JOIN, home));
                        self.groups.join(group, peer);
                    }
                }
                self.touch_repair_state();
                self.federation.count_sync_applied();
            }
            Some("leave") => {
                let Some(peer) = get("peer").and_then(|urn| PeerId::from_urn(&urn)) else {
                    return;
                };
                let home = get("vorigin")
                    .and_then(|urn| PeerId::from_urn(&urn))
                    .unwrap_or(origin);
                if !self.try_version_presence(peer, (seq, PRESENCE_LEAVE, home)) {
                    return; // the peer meanwhile re-homed; this leave is stale
                }
                if self.absorb_remote_leave(peer) {
                    return;
                }
                self.groups.leave_all(&peer);
                self.forget_membership_stamps(&peer);
                self.clear_group_hosts(&peer);
                self.peer_homes.write().remove(&peer);
                self.touch_repair_state();
                self.federation.count_sync_applied();
            }
            Some("membership") => {
                // A migrated membership entry: (group, peer) re-routed onto
                // this broker after a ring change.  It carries the presence
                // version it was observed under; anything older than what we
                // already know is stale and dropped.
                let (Some(peer), Some(group), Some(rank), Some(vorigin)) = (
                    get("peer").and_then(|urn| PeerId::from_urn(&urn)),
                    get("group"),
                    get("vrank").and_then(|r| r.parse::<u8>().ok()),
                    get("vorigin").and_then(|urn| PeerId::from_urn(&urn)),
                ) else {
                    return;
                };
                let carried: PresenceVersion = (seq, rank, vorigin);
                {
                    let mut versions = self.peer_versions.write();
                    match versions.entry(peer) {
                        std::collections::hash_map::Entry::Occupied(mut stored) => {
                            if carried < *stored.get() {
                                return; // a newer join/leave superseded this
                            }
                            if carried > *stored.get() {
                                stored.insert(carried);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(carried);
                        }
                    }
                }
                if rank == PRESENCE_JOIN {
                    let group = GroupId::new(group);
                    if self.is_local_replica(&group, &peer) {
                        self.stamp_membership(&group, peer, carried);
                        self.groups.join(group, peer);
                        self.touch_repair_state();
                    }
                }
                self.federation.count_sync_applied();
            }
            Some("ext") => {
                // An opaque extension-state blob (e.g. an admin-signed
                // revocation list) replicated over the backbone.  The
                // extension authenticates the content itself — the overlay
                // only provides transport and the usual gossip admission.
                let Some(blob) = raw("blob") else {
                    return;
                };
                let extension = self.extension.read().clone();
                if let Some(extension) = extension {
                    let repaired = extension.apply_repair_snapshot(self, &blob);
                    if repaired > 0 {
                        self.federation.count_entries_repaired(repaired);
                    }
                }
                self.federation.count_sync_applied();
            }
            // SWIM verdicts ride the same gossip fabric as data events but
            // mutate the failure detector, not the replicated state (so they
            // do not count as `sync_applied`).  `sinc` is the incarnation
            // the accusation or refutation is made at; the detector's
            // precedence rules decide whether it lands.
            Some("swim-suspect") => {
                let (Some(peer), Some(sinc)) = (
                    get("peer").and_then(|urn| PeerId::from_urn(&urn)),
                    get("sinc").and_then(|s| s.parse::<u64>().ok()),
                ) else {
                    return;
                };
                let outcome = self.swim.lock().on_suspect(peer, sinc);
                match outcome {
                    SuspectOutcome::RefuteWith(incarnation) => {
                        // Someone suspects *us*: broadcast an alive
                        // announcement at a higher incarnation, which orders
                        // above the accusation everywhere it reached.
                        self.federation.count_swim_refutation();
                        self.gossip_swim_alive(incarnation);
                    }
                    SuspectOutcome::Suspected => self.federation.count_swim_suspicion(),
                    SuspectOutcome::Ignored => {}
                }
            }
            Some("swim-alive") => {
                let (Some(peer), Some(sinc)) = (
                    get("peer").and_then(|urn| PeerId::from_urn(&urn)),
                    get("sinc").and_then(|s| s.parse::<u64>().ok()),
                ) else {
                    return;
                };
                if self.swim.lock().on_alive(peer, sinc) == AliveOutcome::Cleared {
                    self.swim_member_alive(peer);
                }
            }
            Some("swim-dead") => {
                let (Some(peer), Some(sinc)) = (
                    get("peer").and_then(|urn| PeerId::from_urn(&urn)),
                    get("sinc").and_then(|s| s.parse::<u64>().ok()),
                ) else {
                    return;
                };
                let outcome = self.swim.lock().on_dead(peer, sinc);
                match outcome {
                    DeadOutcome::Confirmed => self.on_swim_death(peer, sinc, false),
                    DeadOutcome::RefuteWith(incarnation) => {
                        self.federation.count_swim_refutation();
                        self.gossip_swim_alive(incarnation);
                    }
                    DeadOutcome::Ignored => {}
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Epidemic backbone: membership shuffles and Plumtree tree repair
    // ------------------------------------------------------------------

    /// Decodes a comma-joined list of peer URNs.
    fn parse_peer_list(csv: &str) -> Vec<PeerId> {
        csv.split(',').filter_map(PeerId::from_urn).collect()
    }

    /// Handles a peer's `MembershipShuffle`: fold the offered sample into
    /// the passive reservoir (never widening the known set — admission
    /// stays anchored on `peer_brokers`) and answer with a sample of our
    /// own views, so both reservoirs refresh from one exchange.
    fn handle_membership_shuffle(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        // The shuffle doubles as a SWIM liveness signal: the sender
        // piggybacks its incarnation, and receiving the message at all is
        // first-hand proof of life.
        self.swim_contact(message);
        let incoming = Self::parse_peer_list(&message.element_str("peers").unwrap_or_default());
        let reply_sample = {
            let mut view = self.view.lock();
            let sample = view.shuffle_sample(incoming.len().max(4));
            view.integrate_shuffle(&incoming);
            sample
        };
        if reply_sample.is_empty() {
            return;
        }
        let urns: Vec<String> = reply_sample.iter().map(PeerId::to_urn).collect();
        let incarnation = self.swim.lock().incarnation();
        // Replied through the sequencing choke point, not `apply_net`'s
        // response path: inter-broker admission requires a fresh `seq`.
        let reply = Message::new(MessageKind::MembershipShuffleReply, self.id, 0)
            .with_str("peers", &urns.join(","))
            .with_str("inc", &incarnation.to_string());
        self.send_sequenced(message.sender, reply, Duration::ZERO);
    }

    /// Handles the answering half of a shuffle: integrate only.
    fn handle_membership_shuffle_reply(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        self.swim_contact(message);
        let incoming = Self::parse_peer_list(&message.element_str("peers").unwrap_or_default());
        self.view.lock().integrate_shuffle(&incoming);
    }

    /// Handles a lazy-edge `IHave` digest: any advertised gossip id this
    /// broker has not received means the eager tree failed to reach us
    /// first — promote the advertising edge and pull the payloads with a
    /// `Graft`.  Ids already seen need nothing: the tree worked.
    fn handle_plumtree_ihave(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let Some(count) = message
            .element_str("count")
            .and_then(|c| c.parse::<usize>().ok())
        else {
            return;
        };
        let index = message.index();
        let mut missing: Vec<GossipId> = Vec::new();
        {
            let tree = self.plumtree.lock();
            for i in 0..count.min(message.element_count()) {
                let gid = index
                    .get_str(&format!("g{i}-origin"))
                    .and_then(|urn| PeerId::from_urn(&urn))
                    .zip(
                        index
                            .get_str(&format!("g{i}-seq"))
                            .and_then(|s| s.parse::<u64>().ok()),
                    );
                if let Some(gid) = gid {
                    if !tree.has_seen(&gid) {
                        missing.push(gid);
                    }
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        self.plumtree.lock().promote(message.sender);
        let mut graft = Message::new(MessageKind::PlumtreeGraft, self.id, 0)
            .with_str("count", &missing.len().to_string());
        for (i, (origin, seq)) in missing.iter().enumerate() {
            graft.push_element(format!("g{i}-origin"), origin.to_urn().into_bytes());
            graft.push_element(format!("g{i}-seq"), seq.to_string().into_bytes());
        }
        if self
            .send_sequenced(message.sender, graft, Duration::ZERO)
            .is_some()
        {
            self.federation.count_graft_sent();
        }
    }

    /// Handles a `Graft`: the sender missed payloads we advertised — the
    /// edge towards it becomes eager again and every requested payload
    /// still in the cache is re-sent as ordinary gossip.  Evicted payloads
    /// are counted as graft misses; anti-entropy repairs those.
    fn handle_plumtree_graft(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let Some(count) = message
            .element_str("count")
            .and_then(|c| c.parse::<usize>().ok())
        else {
            return;
        };
        self.plumtree.lock().promote(message.sender);
        let index = message.index();
        for i in 0..count.min(message.element_count()) {
            let gid = index
                .get_str(&format!("g{i}-origin"))
                .and_then(|urn| PeerId::from_urn(&urn))
                .zip(
                    index
                        .get_str(&format!("g{i}-seq"))
                        .and_then(|s| s.parse::<u64>().ok()),
                );
            let Some(gid) = gid else {
                continue;
            };
            let cached = self.plumtree.lock().cached(&gid);
            match cached {
                Some(fields) => {
                    self.gossip_to(&[message.sender], GossipEvent::from_owned(fields));
                }
                None => self.federation.count_graft_miss(),
            }
        }
        self.flush_gossip();
    }

    /// Handles a `Prune`: our pushes duplicate what the sender already has
    /// — demote the edge to lazy (digests only) until a graft re-earns it.
    fn handle_plumtree_prune(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        self.plumtree.lock().demote(message.sender);
    }

    // ------------------------------------------------------------------
    // SWIM failure detection
    // ------------------------------------------------------------------

    /// Feeds a received inter-broker message into the detector as
    /// first-hand contact: the sender is demonstrably alive at whatever
    /// incarnation it piggybacked (0 when the message carries none — still
    /// proof of life, just without refutation precedence).
    fn swim_contact(&self, message: &Message) {
        let incarnation = message
            .element_str("inc")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let outcome = self.swim.lock().on_contact(message.sender, incarnation);
        if outcome == AliveOutcome::Cleared {
            self.swim_member_alive(message.sender);
        }
    }

    /// Handles a SWIM direct probe.  The ping itself is first-hand
    /// evidence the *sender* lives; the answer is an ack carrying our own
    /// incarnation, addressed to `reply-to` when present (the prober an
    /// indirect probe relays for) or to the sender (the direct case).
    fn handle_swim_ping(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        self.swim_contact(message);
        let reply_to = message
            .element_str("reply-to")
            .and_then(|urn| PeerId::from_urn(&urn))
            .unwrap_or(message.sender);
        if reply_to == self.id || !self.is_peer_broker(&reply_to) {
            return;
        }
        let incarnation = self.swim.lock().incarnation();
        let ack = Message::new(MessageKind::SwimAck, self.id, 0)
            .with_str("inc", &incarnation.to_string());
        if self.send_sequenced(reply_to, ack, Duration::ZERO).is_some() {
            self.federation.count_swim_ack();
        }
    }

    /// Handles an indirect ping request: a prober whose direct probe of
    /// `target` timed out asks us to try from our vantage point.  We relay
    /// a `SwimPing` whose `reply-to` names the original prober, so a live
    /// target acks the prober directly and one relay hop suffices.
    fn handle_swim_ping_req(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        self.swim_contact(message);
        let Some(target) = message
            .element_str("target")
            .and_then(|urn| PeerId::from_urn(&urn))
        else {
            return;
        };
        if target == self.id || !self.is_peer_broker(&target) {
            return;
        }
        let incarnation = self.swim.lock().incarnation();
        let ping = Message::new(MessageKind::SwimPing, self.id, 0)
            .with_str("inc", &incarnation.to_string())
            .with_str("reply-to", &message.sender.to_urn());
        if self.send_sequenced(target, ping, Duration::ZERO).is_some() {
            self.federation.count_swim_probe();
        }
    }

    /// Handles a probe ack: clears the outstanding probe (direct or
    /// relayed) for the acking broker and refreshes it as alive.
    fn handle_swim_ack(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let incarnation = message
            .element_str("inc")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let outcome = self.swim.lock().on_ack(message.sender, incarnation);
        if outcome == AliveOutcome::Cleared {
            self.swim_member_alive(message.sender);
        }
    }

    /// Re-admits a member the detector cleared — a refutation, an ack from
    /// a falsely-buried broker, or direct contact from a recovered one —
    /// into the membership view and the Plumtree edge sets.  The inverse of
    /// [`Broker::on_swim_death`]; admission state never changed, so this is
    /// all a resurrection takes.
    fn swim_member_alive(&self, peer: PeerId) {
        if !self.is_peer_broker(&peer) {
            return;
        }
        let active = {
            let mut view = self.view.lock();
            view.on_join(peer);
            view.active()
        };
        self.plumtree.lock().sync_active(&active);
    }

    /// Applies a confirmed death verdict: evict `peer` from the membership
    /// views (promotion from the passive reservoir heals the active set),
    /// drop it from the Plumtree edge sets and the pending gossip queues,
    /// and — when the verdict is this broker's own (`announce`) — gossip it
    /// so the rest of the federation converges without each broker paying
    /// its own suspicion timeout.  The admission set (`peer_brokers`), the
    /// shard ring and the replay floor are deliberately untouched:
    /// forgetting those is the operator-driven [`Broker::remove_peer_broker`]
    /// path, and keeping them lets a recovered broker re-enter by simply
    /// answering a probe again.
    fn on_swim_death(&self, peer: PeerId, incarnation: u64, announce: bool) {
        self.federation.count_swim_death();
        let active = {
            let mut view = self.view.lock();
            view.on_failure(&peer);
            view.active()
        };
        self.plumtree.lock().sync_active(&active);
        self.ihave_outbox.lock().remove(&peer);
        self.outbox.lock().remove(&peer);
        if announce {
            self.gossip_to_all(GossipEvent::new(vec![
                ("op", "swim-dead".to_string()),
                ("seq", self.next_sync_seq().to_string()),
                ("peer", peer.to_urn()),
                ("sinc", incarnation.to_string()),
            ]));
            self.flush_gossip();
        }
    }

    /// Broadcasts this broker's refutation: an alive announcement at the
    /// (freshly bumped) incarnation, which orders above every standing
    /// accusation made at a lower one.
    fn gossip_swim_alive(&self, incarnation: u64) {
        self.gossip_to_all(GossipEvent::new(vec![
            ("op", "swim-alive".to_string()),
            ("seq", self.next_sync_seq().to_string()),
            ("peer", self.id.to_urn()),
            ("sinc", incarnation.to_string()),
        ]));
        self.flush_gossip();
    }

    /// One SWIM protocol period, driven by the repair cadence: advance the
    /// detector's logical clock, apply the expirations that fall out
    /// (suspicions start, deadlines confirm deaths), then send the round's
    /// probes.  The local-health multiplier is refreshed first from this
    /// broker's own inbox backlog, so an overloaded broker stretches its
    /// timeouts instead of flooding the federation with false accusations
    /// it is merely too slow to see refuted.
    fn start_swim_probe(&self) {
        let peers = self.peer_brokers.read().clone();
        if peers.is_empty() {
            return;
        }
        let backlog = self
            .network
            .delivered_to(&self.id)
            .saturating_sub(self.processed_count());
        let plan = {
            let mut swim = self.swim.lock();
            swim.sync_members(&peers);
            swim.set_backlog(backlog, SWIM_BACKLOG_THRESHOLD);
            swim.tick()
        };
        for (peer, incarnation) in plan.new_dead {
            self.on_swim_death(peer, incarnation, true);
        }
        for (peer, incarnation) in plan.new_suspects {
            self.federation.count_swim_suspicion();
            self.gossip_to_all(GossipEvent::new(vec![
                ("op", "swim-suspect".to_string()),
                ("seq", self.next_sync_seq().to_string()),
                ("peer", peer.to_urn()),
                ("sinc", incarnation.to_string()),
            ]));
        }
        if let Some(target) = plan.probe {
            let incarnation = self.swim.lock().incarnation();
            let ping = Message::new(MessageKind::SwimPing, self.id, 0)
                .with_str("inc", &incarnation.to_string());
            if self.send_sequenced(target, ping, Duration::ZERO).is_some() {
                self.federation.count_swim_probe();
            }
        }
        for (relay, target) in plan.indirect {
            let request = Message::new(MessageKind::SwimPingReq, self.id, 0)
                .with_str("target", &target.to_urn());
            if self.send_sequenced(relay, request, Duration::ZERO).is_some() {
                self.federation.count_swim_indirect_probe();
            }
        }
        self.flush_gossip();
    }

    /// The SWIM detector's record for `peer` (state and incarnation), or
    /// `None` when the detector is not tracking it.
    pub fn swim_record(&self, peer: &PeerId) -> Option<crate::swim::PeerRecord> {
        self.swim.lock().record(peer)
    }

    /// The members the SWIM detector currently holds confirmed dead.
    pub fn swim_dead_members(&self) -> Vec<PeerId> {
        self.swim.lock().dead_members()
    }

    /// This broker's own SWIM incarnation (bumped by each refutation).
    pub fn swim_incarnation(&self) -> u64 {
        self.swim.lock().incarnation()
    }

    /// Replicates the extension's opaque repair state (e.g. its installed
    /// revocation lists) to every peer broker of the federation.  No-op when
    /// no extension is installed or the extension has nothing to share.
    ///
    /// The update is sent directly (as a single-event `BrokerSync`) rather
    /// than queued in the gossip outbox: the outbox is shared with the
    /// broker's event-loop thread, which could pick the event up and ship it
    /// *after* this call returns.  Sending on the caller's thread completes
    /// before returning, so the per-inbox FIFO guarantees every current peer
    /// applies the update before any request issued afterwards — the
    /// ordering `SecureNetwork::revoke` documents.
    pub fn gossip_extension_state(&self) {
        let Some(extension) = self.extension.read().clone() else {
            return;
        };
        let Some(blob) = extension.repair_snapshot() else {
            return;
        };
        // Epidemic federations send to the active view only; the x-section
        // anti-entropy exchange spreads the blob transitively from there.
        for peer in self.repair_targets() {
            let sync = Message::new(MessageKind::BrokerSync, self.id, 0)
                .with_str("op", "ext")
                .with_element("blob", blob.clone());
            if self.send_sequenced(peer, sync, Duration::ZERO).is_some() {
                self.federation.count_sync_sent();
            }
        }
    }

    /// Re-routes this broker's shard of the index and membership after a
    /// ring-membership change: every entry is re-gossiped to its (possibly
    /// new) replica set, and entries this broker no longer owns are dropped.
    /// The PR 2 last-writer-wins versioning makes entries location-
    /// independent, so migration is exactly a re-route plus re-gossip — the
    /// data model is untouched.  Returns the number of entries that left
    /// this broker.
    ///
    /// No-op in full-replication mode.
    pub fn reshard(&self) -> u64 {
        if !self.is_sharded() {
            return 0;
        }
        let mut migrated = 0u64;

        // Local sessions re-assert their join first: the peer→home routing
        // table is fully replicated, so a freshly admitted broker must learn
        // every existing route (and the membership entries it now owns ride
        // along in the join's group list).
        let sessions: Vec<(PeerId, BrokerSession)> = self
            .sessions
            .read()
            .iter()
            .map(|(peer, session)| (*peer, session.clone()))
            .collect();
        for (peer, session) in sessions {
            let seq = self.version_local_presence(peer, PRESENCE_JOIN);
            self.gossip_join(seq, peer, &session.groups);
        }

        // Advertisements: re-gossip each entry (with its original version)
        // to its replica set, then drop the ones that moved away.
        let entries: Vec<FlatEntry> = {
            let advertisements = self.advertisements.read();
            advertisements
                .iter()
                .flat_map(|(group, index)| {
                    index.iter().map(|((owner, doc_type), adv)| {
                        (group.clone(), *owner, doc_type.clone(), adv.xml.clone(), adv.version)
                    })
                })
                .collect()
        };
        for (group, owner, doc_type, xml, version) in entries {
            let replicas = self.shard_replicas(&group, &owner);
            let targets: Vec<PeerId> = replicas
                .iter()
                .filter(|replica| **replica != self.id)
                .copied()
                .collect();
            self.gossip_to(
                &targets,
                GossipEvent::new(vec![
                    ("op", "publish".to_string()),
                    ("seq", version.0.to_string()),
                    ("vorigin", version.1.to_urn()),
                    ("group", group.as_str().to_string()),
                    ("doc-type", doc_type.clone()),
                    ("owner", owner.to_urn()),
                    ("xml", xml),
                ]),
            );
            if !replicas.contains(&self.id) {
                let mut advertisements = self.advertisements.write();
                if let Some(index) = advertisements.get_mut(&group) {
                    index.remove(&(owner, doc_type));
                    if index.is_empty() {
                        advertisements.remove(&group);
                    }
                }
                migrated += 1;
            }
        }

        // Membership: same treatment per (group, peer) entry, except that a
        // locally homed session's membership is local ground truth and never
        // dropped (its home broker keeps it in addition to the replicas).
        for (group, members) in self.groups.snapshot() {
            for peer in members {
                let replicas = self.shard_replicas(&group, &peer);
                // Migrated entries carry their provenance stamp, so the
                // receiving replica's copy stays comparable against future
                // presence versions exactly as the original was.
                let version = self.membership_stamp(&group, &peer);
                let targets: Vec<PeerId> = replicas
                    .iter()
                    .filter(|replica| **replica != self.id)
                    .copied()
                    .collect();
                self.gossip_to(
                    &targets,
                    GossipEvent::new(vec![
                        ("op", "membership".to_string()),
                        ("seq", version.0.to_string()),
                        ("vrank", PRESENCE_JOIN.to_string()),
                        ("vorigin", version.2.to_urn()),
                        ("peer", peer.to_urn()),
                        ("group", group.as_str().to_string()),
                    ]),
                );
                let homed_here = self.sessions.read().contains_key(&peer);
                if !replicas.contains(&self.id) && !homed_here {
                    self.groups.leave(&group, &peer);
                    self.membership_versions
                        .write()
                        .remove(&(group.clone(), peer));
                    migrated += 1;
                }
            }
        }

        self.federation.count_entries_migrated(migrated);
        self.touch_repair_state();
        // The whole migration ships as one digest per destination — the
        // coalescing is what keeps re-sharding O(brokers) messages instead
        // of O(entries).
        self.flush_gossip();
        migrated
    }

    /// Re-announces a live local session whose presence register was just
    /// overwritten by stale remote gossip: this broker *is* the peer's home
    /// (the connection is local ground truth), so it restores the peer's
    /// membership, re-versions the join above the remote write and gossips
    /// it back out (the caller flushes).
    fn reassert_session(&self, peer: PeerId, session: &BrokerSession) {
        self.peer_homes.write().remove(&peer);
        let seq = self.version_local_presence(peer, PRESENCE_JOIN);
        for group in &session.groups {
            self.stamp_membership(group, peer, (seq, PRESENCE_JOIN, self.id));
            self.groups.join(group.clone(), peer);
        }
        self.set_group_hosts(&peer, &session.groups, self.id);
        self.touch_repair_state();
        self.gossip_join(seq, peer, &session.groups);
    }

    /// Queues a join event for `peer` under `seq` towards every peer broker:
    /// the peer→home routing update is fully replicated in both modes
    /// (receivers apply the membership part only for entries they own).
    fn gossip_join(&self, seq: u64, peer: PeerId, groups: &[GroupId]) {
        let joined = groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.gossip_to_all(GossipEvent::new(vec![
            ("op", "join".to_string()),
            ("seq", seq.to_string()),
            ("peer", peer.to_urn()),
            ("groups", joined),
        ]));
    }

    // ------------------------------------------------------------------
    // Anti-entropy repair
    // ------------------------------------------------------------------
    //
    // Gossip is fire-and-forget, so a digest lost on a backbone edge (an
    // adversarial drop — the in-process channels themselves are reliable)
    // diverges the replicas permanently.  The anti-entropy protocol bounds
    // that divergence: each broker periodically sends every peer a digest of
    // the state the two are *jointly* responsible for (per-section hashes
    // over the shared shard of the advertisement index, the shared group
    // membership, the fully replicated presence/routing register, and the
    // extension's replicated state).  A receiver whose own hashes disagree
    // answers with a snapshot of the mismatched sections and asks for the
    // sender's in return; snapshots merge under the same last-writer-wins
    // versions as gossip, so repair can never regress a newer write.

    /// Extends an FNV-1a state with a length-prefixed chunk (the prefix
    /// keeps adjacent variable-length fields from aliasing).
    fn hash_chunk(state: u64, bytes: &[u8]) -> u64 {
        crate::shard::fnv1a(
            crate::shard::fnv1a(state, &(bytes.len() as u64).to_be_bytes()),
            bytes,
        )
    }

    /// `true` when both this broker and `peer` are ring replicas of
    /// `(group, owner)` — the shared-responsibility test that keeps the two
    /// sides of an anti-entropy exchange hashing the same entry set.
    /// Always `true` in full-replication mode.
    fn is_shared_replica(&self, group: &GroupId, owner: &PeerId, peer: &PeerId) -> bool {
        if !self.is_sharded() {
            return true;
        }
        let ring = self.ring.read();
        ring.is_replica(group, owner, &self.id) && ring.is_replica(group, owner, peer)
    }

    /// Sorted advertisement entries shared between this broker and `peer`.
    fn repair_adv_entries(&self, peer: &PeerId) -> Vec<FlatEntry> {
        let advertisements = self.advertisements.read();
        let mut out: Vec<FlatEntry> = advertisements
            .iter()
            .flat_map(|(group, index)| {
                index.iter().map(|((owner, doc_type), adv)| {
                    (group.clone(), *owner, doc_type.clone(), adv.xml.clone(), adv.version)
                })
            })
            .filter(|(group, owner, ..)| self.is_shared_replica(group, owner, peer))
            .collect();
        out.sort();
        out
    }

    /// `true` when both this broker and `peer` are responsible for the
    /// membership entry `(group, member)`: a ring replica of it, or the
    /// member's home broker (which keeps its local sessions' memberships as
    /// ground truth, and is the only broker that can heal replicas when the
    /// join gossip was lost to all of them).  Both sides evaluate the home
    /// from the fully replicated routing table, so the sets agree whenever
    /// routing does — and routing itself is healed by the presence section.
    fn is_membership_shared(&self, group: &GroupId, member: &PeerId, peer: &PeerId) -> bool {
        if !self.is_sharded() {
            return true;
        }
        let home = self.home_of(member);
        let ring = self.ring.read();
        let responsible = |broker: &PeerId| {
            ring.is_replica(group, member, broker) || home == Some(*broker)
        };
        responsible(&self.id) && responsible(peer)
    }

    /// Sorted membership entries shared with `peer` (see
    /// [`Broker::is_membership_shared`]).
    fn repair_membership_entries(&self, peer: &PeerId) -> Vec<(GroupId, PeerId)> {
        let mut out = Vec::new();
        for (group, members) in self.groups.snapshot() {
            for member in members {
                if self.is_membership_shared(&group, &member, peer) {
                    out.push((group.clone(), member));
                }
            }
        }
        out.sort();
        out
    }

    /// Sorted presence register: every peer's last-writer-wins
    /// `(seq, rank, origin)` version plus its current home broker.  Fully
    /// replicated, like the routing table it versions, so the whole register
    /// is exchanged with every peer.
    fn repair_presence_entries(&self) -> Vec<(PeerId, PresenceVersion, Option<PeerId>)> {
        let versions = self.peer_versions.read();
        let sessions = self.sessions.read();
        let homes = self.peer_homes.read();
        let mut out: Vec<(PeerId, PresenceVersion, Option<PeerId>)> = versions
            .iter()
            .map(|(peer, version)| {
                let home = if sessions.contains_key(peer) {
                    Some(self.id)
                } else {
                    homes.get(peer).copied()
                };
                (*peer, *version, home)
            })
            .collect();
        out.sort();
        out
    }

    /// The per-section anti-entropy hashes of the state shared with `peer`:
    /// `(advertisements, membership, presence, extension)`.
    fn repair_hashes(&self, peer: &PeerId) -> (u64, u64, u64, u64) {
        let (a, m) = self.repair_shared_hashes(peer);
        (a, m, self.repair_presence_hash(), self.repair_extension_hash())
    }

    /// The hashes of the two ring-filtered sections (advertisements and
    /// membership) shared with `peer`: the root digests of the cached repair
    /// trees, so both the flat and the tree strategy compare the identical
    /// quantity and a healthy round costs no re-hashing at all.
    fn repair_shared_hashes(&self, peer: &PeerId) -> (u64, u64) {
        (
            self.repair_section_tree('a', peer).root().digest(),
            self.repair_section_tree('m', peer).root().digest(),
        )
    }

    /// The hash of one advertisement entry as folded into the repair tree.
    /// Order-independent aggregation (XOR up the tree) needs each entry
    /// mixed on its own; the length-prefixed chunks keep adjacent
    /// variable-length fields from aliasing.
    fn adv_entry_hash(
        group: &GroupId,
        owner: &PeerId,
        doc_type: &str,
        xml: &str,
        version: (u64, PeerId),
    ) -> u64 {
        let mut h = crate::shard::FNV_OFFSET;
        h = Self::hash_chunk(h, group.as_str().as_bytes());
        h = Self::hash_chunk(h, owner.as_bytes());
        h = Self::hash_chunk(h, doc_type.as_bytes());
        h = Self::hash_chunk(h, xml.as_bytes());
        h = Self::hash_chunk(h, &version.0.to_be_bytes());
        h = Self::hash_chunk(h, version.1.as_bytes());
        crate::shard::mix(h)
    }

    /// The hash of one membership entry.  Provenance stamps are deliberately
    /// excluded, exactly as the flat section hash excluded them: two
    /// replicas holding the same `(group, member)` set agree.
    fn membership_entry_hash(group: &GroupId, member: &PeerId) -> u64 {
        let mut h = crate::shard::FNV_OFFSET;
        h = Self::hash_chunk(h, group.as_str().as_bytes());
        h = Self::hash_chunk(h, member.as_bytes());
        crate::shard::mix(h)
    }

    /// Marks the state summarised by the repair trees as changed.  Called by
    /// every mutation of the advertisement index, the group membership, the
    /// sessions/homes that shape the membership filter, and the shard ring;
    /// the tree cache compares epochs and rebuilds lazily.  Over-bumping is
    /// harmless (one rebuild); the coarse counter keeps every write O(1).
    fn touch_repair_state(&self) {
        self.repair_epoch.fetch_add(1, Ordering::Release);
    }

    /// The cached repair tree of one shard-keyed section (`'a'` or `'m'`)
    /// towards `peer`, rebuilt when the state epoch moved.  In full
    /// replication the shared-entry filter passes everything, so a single
    /// tree — cached under this broker's own id — serves every edge; sharded
    /// mode keys the cache by peer because each edge shares a different
    /// slice of the ring.
    fn repair_section_tree(&self, section: char, peer: &PeerId) -> Arc<SectionTree> {
        let cache_key = if self.is_sharded() { *peer } else { self.id };
        // The epoch is read *before* the state: a write racing with the
        // build bumps past this value, so the next round rebuilds.
        let epoch = self.repair_epoch.load(Ordering::Acquire);
        let mut cache = self.repair_trees.lock();
        if cache.epoch != epoch {
            cache.adv.clear();
            cache.membership.clear();
            cache.epoch = epoch;
        }
        let slot = match section {
            'a' => &mut cache.adv,
            _ => &mut cache.membership,
        };
        if let Some(tree) = slot.get(&cache_key) {
            return Arc::clone(tree);
        }
        let tree = Arc::new(self.build_section_tree(section, &cache_key));
        slot.insert(cache_key, Arc::clone(&tree));
        tree
    }

    /// Builds the repair tree of one section from scratch (cache miss path).
    fn build_section_tree(&self, section: char, peer: &PeerId) -> SectionTree {
        let mut tree = SectionTree::default();
        if section == 'a' {
            let advertisements = self.advertisements.read();
            for (group, index) in advertisements.iter() {
                for ((owner, doc_type), adv) in index.iter() {
                    if !self.is_shared_replica(group, owner, peer) {
                        continue;
                    }
                    tree.insert(
                        crate::shard::shard_key(group, owner),
                        Self::adv_entry_hash(group, owner, doc_type, &adv.xml, adv.version),
                    );
                }
            }
        } else {
            for (group, member) in self.repair_membership_entries(peer) {
                tree.insert(
                    crate::shard::shard_key(&group, &member),
                    Self::membership_entry_hash(&group, &member),
                );
            }
        }
        tree
    }

    /// The hash of the presence/routing register (fully replicated, so
    /// identical towards every peer).
    fn repair_presence_hash(&self) -> u64 {
        use crate::shard::{mix, FNV_OFFSET};
        let mut p = FNV_OFFSET;
        for (peer_id, version, home) in self.repair_presence_entries() {
            p = Self::hash_chunk(p, peer_id.as_bytes());
            p = Self::hash_chunk(p, &version.0.to_be_bytes());
            p = Self::hash_chunk(p, &[version.1]);
            p = Self::hash_chunk(p, version.2.as_bytes());
            p = match home {
                Some(home) => Self::hash_chunk(p, home.as_bytes()),
                None => Self::hash_chunk(p, &[]),
            };
        }
        mix(p)
    }

    /// The hash of the extension's replicated state (peer-independent; zero
    /// when no extension is installed or it replicates nothing).
    fn repair_extension_hash(&self) -> u64 {
        use crate::shard::{mix, FNV_OFFSET};
        match self.extension.read().clone().and_then(|e| e.repair_digest()) {
            Some(bytes) => mix(Self::hash_chunk(FNV_OFFSET, &bytes)),
            None => 0,
        }
    }

    /// Starts one anti-entropy round: sends every peer broker a digest of
    /// the jointly held state.  Peers whose replicas disagree answer with a
    /// snapshot exchange; a healthy backbone answers nothing, so the idle
    /// cost of a round is one small digest per edge.
    pub fn start_repair_round(&self) {
        // Epidemic federations repair over the active-view edges only:
        // state flows transitively edge by edge (the view graph is
        // connected — the pinned ring successors alone form a cycle), so
        // the idle cost of a round is O(view) digests instead of O(N).
        let peers = self.repair_targets();
        if peers.is_empty() {
            return;
        }
        self.federation.count_repair_round();
        // The presence and extension sections are identical towards every
        // peer; the shard-keyed sections come from the cached repair trees
        // (one shared tree in full replication, one per edge sharded), so a
        // round over an unchanged state hashes nothing and costs one small
        // digest per edge.
        let p = self.repair_presence_hash();
        let x = self.repair_extension_hash();
        for peer in peers {
            let (a, m) = self.repair_shared_hashes(&peer);
            let digest = Message::new(MessageKind::AntiEntropyDigest, self.id, 0)
                .with_str("a-hash", &a.to_string())
                .with_str("m-hash", &m.to_string())
                .with_str("p-hash", &p.to_string())
                .with_str("x-hash", &x.to_string());
            self.send_repair(peer, digest);
        }
        // The repair cadence doubles as the membership layer's shuffle
        // clock: one shuffle per round refreshes the passive reservoir so
        // failure-triggered promotions have fresh candidates.
        self.start_shuffle();
        // Lazy IHave digests batched across every publish since the last
        // round ship now, one digest per lazy edge (see
        // [`Broker::flush_ihaves`]).
        self.flush_ihaves();
        // And the same cadence is the SWIM protocol period: one direct
        // probe per round, suspicion/death expirations, verdict gossip.
        self.start_swim_probe();
    }

    /// Sends one `MembershipShuffle` to a deterministically rotating active
    /// peer: a sample of this broker's views for the target to fold into
    /// its passive reservoir, answered with a sample of the target's own
    /// ([`MessageKind::MembershipShuffleReply`]).  No-op below the epidemic
    /// engagement threshold — complete views have nothing to refresh.
    fn start_shuffle(&self) {
        if !self.epidemic_engaged() {
            return;
        }
        let (target, sample) = {
            let mut view = self.view.lock();
            (view.shuffle_target(), view.shuffle_sample(4))
        };
        let Some(target) = target else {
            return;
        };
        if sample.is_empty() {
            return;
        }
        let urns: Vec<String> = sample.iter().map(PeerId::to_urn).collect();
        let incarnation = self.swim.lock().incarnation();
        let shuffle = Message::new(MessageKind::MembershipShuffle, self.id, 0)
            .with_str("peers", &urns.join(","))
            .with_str("inc", &incarnation.to_string());
        self.send_sequenced(target, shuffle, Duration::ZERO);
    }

    /// Sends one repair-protocol message, attributing its wire bytes (and,
    /// for descent legs, the leg count) to the federation metrics — the
    /// global network counters cannot separate repair from gossip.
    fn send_repair(&self, to: PeerId, message: Message) -> bool {
        let is_descent = message.kind == MessageKind::AntiEntropyRange;
        match self.send_sequenced(to, message, Duration::ZERO) {
            Some(size) => {
                self.federation.count_repair_bytes(size as u64);
                if is_descent {
                    self.federation.count_descent_round();
                }
                true
            }
            None => false,
        }
    }

    /// Membership repair needs the sender's presence versions to decide
    /// deletions, so an `m` section always travels with `p`.
    fn normalize_sections(sections: &str) -> String {
        if sections.contains('m') && !sections.contains('p') {
            format!("{sections}p")
        } else {
            sections.to_string()
        }
    }

    /// Handles a peer's anti-entropy digest: compare section hashes and, on
    /// any mismatch, start repairing.  The small fully replicated sections
    /// (presence, extension) answer with a full snapshot, asking for the
    /// peer's in return — one exchange heals both replicas.  The shard-keyed
    /// sections (advertisements, membership) are O(shard): with
    /// [`BrokerConfig::repair_tree`] set a mismatch starts a hash-tree
    /// descent instead, narrowing to the divergent key ranges before any
    /// entry is shipped; without it they join the full snapshot (the PR 4
    /// baseline).
    fn handle_anti_entropy_digest(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let origin = message.sender;
        let (a, m, p, x) = self.repair_hashes(&origin);
        let theirs = |name: &str| message.element_str(name).and_then(|h| h.parse::<u64>().ok());
        let mut flat = String::new();
        let mut descend = String::new();
        if theirs("a-hash") != Some(a) {
            if self.config.repair_tree { descend.push('a') } else { flat.push('a') }
        }
        if theirs("m-hash") != Some(m) {
            if self.config.repair_tree { descend.push('m') } else { flat.push('m') }
        }
        if theirs("p-hash") != Some(p) {
            flat.push('p');
        }
        if theirs("x-hash") != Some(x) {
            flat.push('x');
        }
        if flat.is_empty() && descend.is_empty() {
            return; // the replicas agree
        }
        self.federation.count_repair_mismatch();
        if !flat.is_empty() {
            let sections = Self::normalize_sections(&flat);
            let snapshot = self.build_repair_snapshot(&origin, &sections, &sections);
            self.send_repair(origin, snapshot);
        }
        // Repair rounds are started federation-wide, so in a full mesh each
        // broker pair exchanges digests in both directions every round.  One
        // descent already heals both replicas (the final page legs ship
        // entries both ways), so only the lower-id broker initiates — without
        // the tie-break every divergence would be walked twice in mirror.
        // Epidemic federations digest over the *asymmetric* active view: when
        // `origin` is not among this broker's own repair targets the mirror
        // digest never arrives, and waiting for it would wedge the repair —
        // so a one-directional edge descends regardless of the tie-break.
        let mirrored = self.repair_targets().contains(&origin);
        if self.id < origin || !mirrored {
            for section in descend.chars() {
                // First descent leg: our children of the root.
                self.send_range_children(origin, section, 0, 0);
            }
        }
    }

    /// Sends one descent leg: this broker's child summaries of the repair-
    /// tree node `(depth, prefix)` of `section`, for the peer to compare
    /// against its own tree in [`Broker::handle_anti_entropy_range`].  All
    /// [`shard::REPAIR_TREE_ARITY`] children travel, empty ones included —
    /// the peer needs the zero summaries to notice entries only it holds.
    fn send_range_children(&self, peer: PeerId, section: char, depth: u32, prefix: u64) {
        let tree = self.repair_section_tree(section, &peer);
        let mut nodes =
            Vec::with_capacity(crate::shard::REPAIR_TREE_ARITY * crate::shard::NODE_RECORD_BYTES);
        for (child, summary) in tree.children(depth, prefix).into_iter().enumerate() {
            shard::encode_node(&mut nodes, depth + 1, (prefix << 4) | child as u64, summary);
        }
        let message = Message::new(MessageKind::AntiEntropyRange, self.id, 0)
            .with_str("section", &section.to_string())
            .with_element("nodes", nodes);
        self.send_repair(peer, message);
    }

    /// Handles one descent leg of a hash-tree repair: compares the peer's
    /// node summaries against the local tree.  Agreeing nodes are dropped; a
    /// divergent node either descends one more level (its children go into
    /// the reply leg) or — at the leaf level, once both sides' counts fit a
    /// page, or past the per-message node budget — has its key range shipped
    /// as range-scoped snapshot pages.  The exchange is stateless and the
    /// depth strictly increases leg over leg, so a descent terminates within
    /// [`shard::REPAIR_TREE_DEPTH`] range legs however the trees differ.
    fn handle_anti_entropy_range(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let origin = message.sender;
        let Some(section) = message.element_str("section").and_then(|s| s.chars().next()) else {
            return;
        };
        if section != 'a' && section != 'm' {
            return;
        }
        let Some(blob) = message.element("nodes") else {
            return;
        };
        let tree = self.repair_section_tree(section, &origin);
        let mut reply = Vec::new();
        let mut reply_nodes = 0usize;
        let mut pages: Vec<(u64, u64)> = Vec::new();
        for (depth, prefix, theirs) in shard::decode_nodes(blob) {
            if depth == 0
                || depth > shard::REPAIR_TREE_DEPTH
                || prefix >= 1u64 << (4 * depth).min(63)
            {
                continue; // malformed node address
            }
            let ours = tree.node(depth, prefix);
            if ours == theirs {
                continue;
            }
            let descend = depth < shard::REPAIR_TREE_DEPTH
                && ours.count.max(theirs.count) > REPAIR_PAGE_ENTRIES
                && reply_nodes + shard::REPAIR_TREE_ARITY <= REPAIR_MAX_RANGE_NODES;
            if descend {
                for (child, summary) in tree.children(depth, prefix).into_iter().enumerate() {
                    shard::encode_node(&mut reply, depth + 1, (prefix << 4) | child as u64, summary);
                }
                reply_nodes += shard::REPAIR_TREE_ARITY;
            } else {
                // Small enough to ship (or the node budget is spent —
                // massive divergence degrades to shipping coarser ranges,
                // never to an unbounded message).
                pages.push(shard::node_range(depth, prefix));
            }
        }
        if !reply.is_empty() {
            let next = Message::new(MessageKind::AntiEntropyRange, self.id, 0)
                .with_str("section", &section.to_string())
                .with_element("nodes", reply);
            self.send_repair(origin, next);
        }
        for (lo, hi) in pages {
            self.send_range_pages(origin, section, lo, hi, true);
        }
    }

    /// Builds an `AntiEntropySnapshot` of the given sections for `peer`.
    /// `want` names the sections the receiver should send back (empty on
    /// the final leg of an exchange, which is what terminates it).
    fn build_repair_snapshot(&self, peer: &PeerId, sections: &str, want: &str) -> Message {
        let mut snapshot =
            Message::new(MessageKind::AntiEntropySnapshot, self.id, 0).with_str("want", want);
        if sections.contains('a') {
            Self::push_adv_section(&mut snapshot, self.repair_adv_entries(peer));
        }
        if sections.contains('m') {
            self.push_membership_section(&mut snapshot, self.repair_membership_entries(peer));
        }
        if sections.contains('p') {
            self.push_presence_section(&mut snapshot);
        }
        if sections.contains('x') {
            if let Some(blob) = self.extension.read().clone().and_then(|e| e.repair_snapshot()) {
                snapshot.push_element("ext", blob);
            }
        }
        snapshot
    }

    /// Appends advertisement entries as an `a` section (`a-count` + `a{i}-*`).
    fn push_adv_section(snapshot: &mut Message, entries: Vec<FlatEntry>) {
        snapshot.push_element("a-count", entries.len().to_string().into_bytes());
        for (i, (group, owner, doc_type, xml, version)) in entries.into_iter().enumerate() {
            snapshot.push_element(format!("a{i}-group"), group.as_str().as_bytes().to_vec());
            snapshot.push_element(format!("a{i}-owner"), owner.to_urn().into_bytes());
            snapshot.push_element(format!("a{i}-type"), doc_type.into_bytes());
            snapshot.push_element(format!("a{i}-xml"), xml.into_bytes());
            snapshot.push_element(format!("a{i}-vseq"), version.0.to_string().into_bytes());
            snapshot.push_element(format!("a{i}-vorigin"), version.1.to_urn().into_bytes());
        }
    }

    /// Appends membership entries (with their provenance stamps) as an `m`
    /// section (`m-count` + `m{i}-*`).
    fn push_membership_section(&self, snapshot: &mut Message, entries: Vec<(GroupId, PeerId)>) {
        snapshot.push_element("m-count", entries.len().to_string().into_bytes());
        for (i, (group, member)) in entries.into_iter().enumerate() {
            let version = self.membership_stamp(&group, &member);
            snapshot.push_element(format!("m{i}-group"), group.as_str().as_bytes().to_vec());
            snapshot.push_element(format!("m{i}-peer"), member.to_urn().into_bytes());
            snapshot.push_element(format!("m{i}-vseq"), version.0.to_string().into_bytes());
            snapshot.push_element(format!("m{i}-vrank"), version.1.to_string().into_bytes());
            snapshot.push_element(format!("m{i}-vorigin"), version.2.to_urn().into_bytes());
        }
    }

    /// Appends the full presence/routing register as a `p` section.
    fn push_presence_section(&self, snapshot: &mut Message) {
        let entries = self.repair_presence_entries();
        snapshot.push_element("p-count", entries.len().to_string().into_bytes());
        for (i, (peer_id, version, home)) in entries.into_iter().enumerate() {
            snapshot.push_element(format!("p{i}-peer"), peer_id.to_urn().into_bytes());
            snapshot.push_element(format!("p{i}-vseq"), version.0.to_string().into_bytes());
            snapshot.push_element(format!("p{i}-vrank"), version.1.to_string().into_bytes());
            snapshot.push_element(format!("p{i}-vorigin"), version.2.to_urn().into_bytes());
            if let Some(home) = home {
                snapshot.push_element(format!("p{i}-home"), home.to_urn().into_bytes());
            }
        }
    }

    /// Advertisement entries shared with `peer` whose shard key falls in
    /// `[lo, hi]`, sorted by key.
    fn repair_adv_entries_in(&self, peer: &PeerId, lo: u64, hi: u64) -> Vec<(u64, FlatEntry)> {
        let advertisements = self.advertisements.read();
        let mut out: Vec<(u64, FlatEntry)> = Vec::new();
        for (group, index) in advertisements.iter() {
            for ((owner, doc_type), adv) in index.iter() {
                let key = crate::shard::shard_key(group, owner);
                if key < lo || key > hi || !self.is_shared_replica(group, owner, peer) {
                    continue;
                }
                out.push((
                    key,
                    (group.clone(), *owner, doc_type.clone(), adv.xml.clone(), adv.version),
                ));
            }
        }
        out.sort();
        out
    }

    /// Membership entries shared with `peer` whose shard key falls in
    /// `[lo, hi]`, sorted by key.
    fn repair_membership_entries_in(
        &self,
        peer: &PeerId,
        lo: u64,
        hi: u64,
    ) -> Vec<(u64, (GroupId, PeerId))> {
        let mut out = Vec::new();
        for (group, members) in self.groups.snapshot() {
            for member in members {
                let key = crate::shard::shard_key(&group, &member);
                if key < lo || key > hi || !self.is_membership_shared(&group, &member, peer) {
                    continue;
                }
                out.push((key, (group.clone(), member)));
            }
        }
        out.sort();
        out
    }

    /// Ships the shared entries of the divergent key range `[lo, hi]` of
    /// `section` to `peer` as bounded snapshot pages.  `want` asks the peer
    /// to send its own entries of each page's sub-range back (the final legs
    /// of a descent); the peer's replies travel with `want` unset, which
    /// terminates the exchange.
    fn send_range_pages(&self, peer: PeerId, section: char, lo: u64, hi: u64, want: bool) {
        match section {
            'a' => {
                let entries = self.repair_adv_entries_in(&peer, lo, hi);
                self.send_pages(peer, section, (lo, hi), want, entries, |_, snapshot, page| {
                    Self::push_adv_section(snapshot, page.to_vec());
                });
            }
            _ => {
                let entries = self.repair_membership_entries_in(&peer, lo, hi);
                self.send_pages(peer, section, (lo, hi), want, entries, |broker, snapshot, page| {
                    broker.push_membership_section(snapshot, page.to_vec());
                    // Membership deletions compare against the *sender's*
                    // presence versions, so every m page travels with the
                    // full p section, exactly like a flat m snapshot does.
                    broker.push_presence_section(snapshot);
                });
            }
        }
    }

    /// Splits `entries` (sorted by shard key) into pages of at most
    /// [`REPAIR_PAGE_MAX`] entries — never splitting one shard key across
    /// pages — and sends one range-scoped snapshot per page.  The page
    /// sub-ranges partition `[lo, hi]` exactly, so a `want` request pulls
    /// every peer-side entry of the divergent range exactly once; an entry-
    /// less range still sends one empty page, because the peer may hold
    /// entries this broker lacks, and for the membership section the empty
    /// page is also what authorises deletions in the range.
    fn send_pages<T: Clone>(
        &self,
        peer: PeerId,
        section: char,
        (lo, hi): (u64, u64),
        want: bool,
        entries: Vec<(u64, T)>,
        fill: impl Fn(&Broker, &mut Message, &[T]),
    ) {
        let mut bounds: Vec<(u64, u64, std::ops::Range<usize>)> = Vec::new();
        if entries.is_empty() {
            bounds.push((lo, hi, 0..0));
        } else {
            let mut page_lo = lo;
            let mut start = 0usize;
            while start < entries.len() {
                let mut end = (start + REPAIR_PAGE_MAX).min(entries.len());
                while end < entries.len() && entries[end].0 == entries[end - 1].0 {
                    end += 1;
                }
                let page_hi = if end == entries.len() { hi } else { entries[end - 1].0 };
                bounds.push((page_lo, page_hi, start..end));
                page_lo = page_hi.wrapping_add(1);
                start = end;
            }
        }
        for (page_lo, page_hi, span) in bounds {
            let page: Vec<T> = entries[span].iter().map(|(_, entry)| entry.clone()).collect();
            let mut snapshot = Message::new(MessageKind::AntiEntropySnapshot, self.id, 0)
                .with_str("want", "")
                .with_str("rsec", &section.to_string())
                .with_str("range-lo", &page_lo.to_string())
                .with_str("range-hi", &page_hi.to_string());
            if want {
                snapshot.push_element("want-range", b"1".to_vec());
            }
            fill(self, &mut snapshot, &page);
            self.federation.count_repair_page();
            self.send_repair(peer, snapshot);
        }
    }

    /// Handles a peer's anti-entropy snapshot: merge every section under the
    /// last-writer-wins rules and, if the peer asked (`want`), send the
    /// local snapshot of the same sections back so both replicas converge.
    fn handle_anti_entropy_snapshot(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let origin = message.sender;
        let repaired = self.merge_repair_snapshot(origin, message);
        if repaired > 0 {
            self.federation.count_entries_repaired(repaired);
        }
        let want = message.element_str("want").unwrap_or_default();
        if !want.is_empty() {
            let sections = Self::normalize_sections(&want);
            let reply = self.build_repair_snapshot(&origin, &sections, "");
            self.send_repair(origin, reply);
        }
        // A range page asking for our side of its sub-range: reply with our
        // entries (want-range unset), which ends the descent for that range.
        if message.element("want-range").is_some() {
            if let (Some(section), Some(lo), Some(hi)) = (
                message.element_str("rsec").and_then(|s| s.chars().next()),
                message.element_str("range-lo").and_then(|s| s.parse::<u64>().ok()),
                message.element_str("range-hi").and_then(|s| s.parse::<u64>().ok()),
            ) {
                if section == 'a' || section == 'm' {
                    self.send_range_pages(origin, section, lo, hi, false);
                }
            }
        }
        // Merging may have re-asserted live local sessions; ship the gossip.
        self.flush_gossip();
    }

    /// Merges one snapshot into local state.  Returns the number of entries
    /// actually brought up to date (stale snapshot content merges to zero —
    /// the no-regression property the repair proptests assert).
    fn merge_repair_snapshot(&self, origin: PeerId, message: &Message) -> u64 {
        let mut repaired = 0u64;
        // Index the elements once: with up to six `a{i}-*` lookups per entry,
        // the linear `Message::element` scan made merging an n-entry snapshot
        // O(n²) element visits.
        let index = message.index();
        let text = |name: &str| index.get_str(name);
        let count = |name: &str| text(name).and_then(|c| c.parse::<usize>().ok());
        // Range-scoped pages (the final legs of a tree descent) only speak
        // for `[lo, hi]` of the shard-key space: an entry the page lacks is
        // evidence of deletion only if its key is inside the page's range.
        let range = (
            text("range-lo").and_then(|s| s.parse::<u64>().ok()),
            text("range-hi").and_then(|s| s.parse::<u64>().ok()),
        );
        let in_range = |key: u64| match range {
            (Some(lo), Some(hi)) => key >= lo && key <= hi,
            _ => true,
        };

        // The presence section is parsed up front: the membership deletion
        // rule below compares against the *sender's* versions.
        let presence: Option<Vec<(PeerId, PresenceVersion, Option<PeerId>)>> =
            count("p-count").map(|n| {
                (0..n)
                    .filter_map(|i| {
                        let peer =
                            text(&format!("p{i}-peer")).and_then(|u| PeerId::from_urn(&u))?;
                        let seq =
                            text(&format!("p{i}-vseq")).and_then(|s| s.parse::<u64>().ok())?;
                        let rank =
                            text(&format!("p{i}-vrank")).and_then(|r| r.parse::<u8>().ok())?;
                        let vorigin =
                            text(&format!("p{i}-vorigin")).and_then(|u| PeerId::from_urn(&u))?;
                        let home = text(&format!("p{i}-home")).and_then(|u| PeerId::from_urn(&u));
                        Some((peer, (seq, rank, vorigin), home))
                    })
                    .collect()
            });

        // Presence/routing first: merge each entry if its version is newer,
        // mirroring the join/leave gossip application (including the
        // live-session arbitration and the shadow/resurrect dance).  It must
        // run before the membership sections — those store the same versions,
        // and a version that arrives via membership first would make the
        // presence merge skip the entry as already-known, leaving the
        // routing table unhealed.
        if let Some(presence) = presence.as_ref() {
            for &(peer, version, home) in presence {
                if !self.try_version_presence(peer, version) {
                    continue;
                }
                repaired += 1;
                if version.1 == PRESENCE_JOIN {
                    if self.yield_to_remote_join(peer, version.2) {
                        continue;
                    }
                    // Unlike a gossiped join (which carries the full group
                    // list), the snapshot's membership section reconciles
                    // groups separately, so memberships are left untouched
                    // here.
                    match home {
                        Some(home) if home != self.id => {
                            self.peer_homes.write().insert(peer, home);
                        }
                        _ => {
                            self.peer_homes.write().remove(&peer);
                        }
                    }
                } else {
                    if self.absorb_remote_leave(peer) {
                        continue;
                    }
                    self.groups.leave_all(&peer);
                    self.forget_membership_stamps(&peer);
                    self.peer_homes.write().remove(&peer);
                }
            }
        }

        // Membership: deletions first — an entry we hold, shared with the
        // sender, that the sender no longer has, *and* whose provenance
        // stamp is strictly older than what the sender knows about the
        // member, means we missed a leave or a re-join with a smaller group
        // set.  An equal version proves the entry current instead (the same
        // join event implies the same group list), which keeps a half-healed
        // replica from talking a healed one out of a correct entry.  Then
        // additions, carrying the sender's provenance stamps.
        if let (Some(m_count), Some(presence)) = (count("m-count"), presence.as_ref()) {
            let sender_versions: HashMap<PeerId, PresenceVersion> =
                presence.iter().map(|(peer, version, _)| (*peer, *version)).collect();
            // A forged m-count must not reserve memory the message cannot
            // back: each membership entry occupies at least five elements.
            let m_cap = m_count.min(message.element_count() / 5 + 1);
            let mut sender_members: std::collections::HashSet<(GroupId, PeerId)> =
                std::collections::HashSet::with_capacity(m_cap);
            let mut additions = Vec::with_capacity(m_cap);
            for i in 0..m_count {
                let (Some(group), Some(member), Some(seq), Some(rank), Some(vorigin)) = (
                    text(&format!("m{i}-group")),
                    text(&format!("m{i}-peer")).and_then(|u| PeerId::from_urn(&u)),
                    text(&format!("m{i}-vseq")).and_then(|s| s.parse::<u64>().ok()),
                    text(&format!("m{i}-vrank")).and_then(|r| r.parse::<u8>().ok()),
                    text(&format!("m{i}-vorigin")).and_then(|u| PeerId::from_urn(&u)),
                ) else {
                    continue;
                };
                let group = GroupId::new(group);
                sender_members.insert((group.clone(), member));
                additions.push((group, member, (seq, rank, vorigin)));
            }
            for (group, member) in self.repair_membership_entries(&origin) {
                if !in_range(crate::shard::shard_key(&group, &member))
                    || sender_members.contains(&(group.clone(), member))
                {
                    continue;
                }
                if self.sessions.read().contains_key(&member) {
                    // Local ground truth: a live session's membership is
                    // never deleted on a peer's say-so.
                    continue;
                }
                let Some(sender_version) = sender_versions.get(&member) else {
                    continue; // the sender knows nothing about this peer
                };
                if *sender_version > self.membership_stamp(&group, &member) {
                    self.groups.leave(&group, &member);
                    self.membership_versions
                        .write()
                        .remove(&(group.clone(), member));
                    repaired += 1;
                }
            }
            for (group, member, carried) in additions {
                if carried.1 != PRESENCE_JOIN || !self.is_local_replica(&group, &member) {
                    continue;
                }
                if self
                    .peer_versions
                    .read()
                    .get(&member)
                    .is_some_and(|stored| *stored > carried)
                {
                    // The member's presence moved past this entry's
                    // provenance (a later leave or re-join); only a sender
                    // with an equally current stamp may assert it.
                    continue;
                }
                if self.groups.is_member(&group, &member) {
                    if carried > self.membership_stamp(&group, &member) {
                        self.stamp_membership(&group, member, carried);
                    }
                } else {
                    self.stamp_membership(&group, member, carried);
                    self.groups.join(group, member);
                    repaired += 1;
                }
            }
        }

        // Advertisements: pure LWW merge — repair only ever *adds* missed
        // writes (reshard handles ownership moves deterministically on every
        // broker, so there are no deletions to reconcile).
        if let Some(n) = count("a-count") {
            for i in 0..n {
                let (Some(group), Some(owner), Some(doc_type), Some(xml), Some(vseq), Some(vorigin)) = (
                    text(&format!("a{i}-group")),
                    text(&format!("a{i}-owner")).and_then(|u| PeerId::from_urn(&u)),
                    text(&format!("a{i}-type")),
                    text(&format!("a{i}-xml")),
                    text(&format!("a{i}-vseq")).and_then(|s| s.parse::<u64>().ok()),
                    text(&format!("a{i}-vorigin")).and_then(|u| PeerId::from_urn(&u)),
                ) else {
                    continue;
                };
                let group = GroupId::new(group);
                if !self.is_local_replica(&group, &owner) {
                    continue;
                }
                if self.store_advertisement(owner, &group, &doc_type, &xml, (vseq, vorigin)) {
                    // The members homed here missed the original push along
                    // with the gossip; deliver it now that the entry healed.
                    self.push_to_local_members(owner, &group, &doc_type, &xml);
                    repaired += 1;
                }
            }
        }

        // Extension state (e.g. signed revocation lists): the extension
        // authenticates and merges the blob itself.
        if let Some(blob) = index.get("ext") {
            let extension = self.extension.read().clone();
            if let Some(extension) = extension {
                repaired += extension.apply_repair_snapshot(self, blob);
            }
        }
        if repaired > 0 {
            self.touch_repair_state();
        }
        repaired
    }

    // ------------------------------------------------------------------
    // Relaying
    // ------------------------------------------------------------------

    /// Handles a client's `RelayViaBroker` request: deliver locally if the
    /// destination is homed here, otherwise forward it across the backbone
    /// to the destination's home broker.  `carried_wire` is the wire time of
    /// the client→broker hop, so the final delivery charges every hop.
    fn handle_relay_request(&self, message: &Message, carried_wire: Duration) -> Option<Message> {
        if self.session(&message.sender).is_none() {
            return Some(self.reject(message, "login required"));
        }
        let (Some(to_urn), Some(payload)) = (message.element_str("to"), message.element("payload"))
        else {
            return Some(self.reject(message, "missing relay fields"));
        };
        let Some(dest) = PeerId::from_urn(&to_urn) else {
            return Some(self.reject(message, "malformed destination identifier"));
        };

        if self.sessions.read().contains_key(&dest) {
            // lint:allow(accounted-send, relay leaf delivery to a locally attached peer)
            return match self.network.forward(self.id, dest, payload.to_vec(), carried_wire) {
                Ok(_) => {
                    self.federation.count_relay_delivered();
                    Some(
                        Message::new(MessageKind::Ack, self.id, message.request_id)
                            .with_str("status", "ok")
                            .with_str("route", "local"),
                    )
                }
                Err(_) => {
                    self.federation.count_relay_failed();
                    Some(self.reject(message, "destination unreachable"))
                }
            };
        }

        let Some(home) = self.peer_homes.read().get(&dest).copied() else {
            self.federation.count_relay_failed();
            return Some(self.reject(message, "unknown destination peer"));
        };
        let relay = Message::new(MessageKind::BrokerRelay, self.id, message.request_id)
            .with_str("to", &to_urn)
            .with_element("payload", payload.to_vec());
        if self.send_sequenced(home, relay, carried_wire).is_some() {
            self.federation.count_relay_forwarded();
            Some(
                Message::new(MessageKind::Ack, self.id, message.request_id)
                    .with_str("status", "ok")
                    .with_str("route", "federation"),
            )
        } else {
            self.federation.count_relay_failed();
            Some(self.reject(message, "home broker unreachable"))
        }
    }

    /// Handles a `BrokerRelay` arriving over the backbone: after admission
    /// control, the opaque payload is delivered to the locally homed
    /// destination peer with the accumulated wire time carried forward.
    fn handle_broker_relay(
        &self,
        message: &Message,
        transport_from: Option<PeerId>,
        carried_wire: Duration,
    ) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let (Some(to_urn), Some(payload)) = (message.element_str("to"), message.element("payload"))
        else {
            self.federation.count_relay_failed();
            return;
        };
        let Some(dest) = PeerId::from_urn(&to_urn) else {
            self.federation.count_relay_failed();
            return;
        };
        if !self.sessions.read().contains_key(&dest) {
            self.federation.count_relay_failed();
            return;
        }
        // lint:allow(accounted-send, relay leaf delivery to a locally attached peer)
        match self.network.forward(self.id, dest, payload.to_vec(), carried_wire) {
            Ok(_) => self.federation.count_relay_delivered(),
            Err(_) => self.federation.count_relay_failed(),
        }
    }

    /// Looks up advertisements of a given type within a group, optionally
    /// restricted to one owner — local shard only.
    pub fn lookup(
        &self,
        group: &GroupId,
        doc_type: &str,
        owner: Option<PeerId>,
    ) -> Vec<String> {
        self.lookup_versioned(group, doc_type, owner)
            .into_iter()
            .map(|(_, _, xml)| xml)
            .collect()
    }

    /// Like [`Broker::lookup`] but returning each entry's owner and
    /// last-writer-wins version — what shard replicas exchange so that
    /// scatter-gather responses deduplicate to the same winner everywhere.
    fn lookup_versioned(
        &self,
        group: &GroupId,
        doc_type: &str,
        owner: Option<PeerId>,
    ) -> Vec<(PeerId, (u64, PeerId), String)> {
        let advertisements = self.advertisements.read();
        let Some(index) = advertisements.get(group) else {
            return Vec::new();
        };
        let mut results: Vec<(PeerId, (u64, PeerId), String)> = index
            .iter()
            .filter(|((adv_owner, adv_type), _)| {
                adv_type == doc_type && owner.is_none_or(|o| *adv_owner == o)
            })
            .map(|((adv_owner, _), adv)| (*adv_owner, adv.version, adv.xml.clone()))
            .collect();
        // Deterministic order keeps experiments and tests reproducible.
        results.sort_by_key(|(owner, _, _)| *owner);
        results
    }

    /// Starts the broker's event loop.
    ///
    /// With `config.verify_workers == 0` this is the classic single thread:
    /// receive, decode, verify, apply, one message at a time.  With workers
    /// configured the ingress path becomes a staged pipeline (see
    /// [`BrokerConfig::verify_workers`]):
    ///
    /// ```text
    /// network inbox ──[ingress lock: batch + tickets]──► verify worker
    ///   (decode + preverify, parallel, no lock)              │
    ///                                                        ▼
    ///              [router lock: reorder to ticket order, classify]
    ///               │ partition-local               │ partition-spanning
    ///               ▼ (shard_key % lanes)           ▼
    ///       apply lanes (parallel,          barrier: drain all lanes,
    ///        FIFO per partition;             then apply on the routing
    ///        idle lane → apply on            worker
    ///        the routing worker)
    /// ```
    ///
    /// Each verify worker carries a message end to end: it stamps monotone
    /// tickets while holding the ingress lock (so ticket order is arrival
    /// order), pre-verifies in parallel, and then — holding the router lock,
    /// which makes it the sole dispatcher for that moment — restores exact
    /// arrival order through the ticket reorder buffer and routes each
    /// message *in that order*.  A partition-local message ([`apply_route`])
    /// goes to the FIFO lane owning its `(group, owner)` shard key (or, when
    /// that lane is idle, applies directly on the routing worker — the lane
    /// handoff only pays for itself when there is queued work to overlap
    /// with), so same-partition messages keep their relative order while
    /// different partitions apply in parallel.  A partition-spanning message
    /// waits for every busy lane to quiesce (a barrier) and then applies on
    /// the routing worker itself, so it observes — and is observed by — all
    /// lane traffic in ticket order.  Lane queues are bounded, so a
    /// saturated lane stalls the router, which stalls the verify pool and
    /// the inbox drain, which (with [`BrokerConfig::inbox_capacity`]) pushes
    /// back on senders instead of queueing without bound.
    pub fn spawn(self: &Arc<Self>) -> BrokerHandle {
        let receiver = match self.config.inbox_capacity {
            Some(capacity) => self.network.register_bounded(self.id, capacity),
            None => self.network.register(self.id),
        };
        let (shutdown_tx, shutdown_rx) = crossbeam::channel::bounded::<()>(1);
        let mut threads = Vec::new();

        if self.config.verify_workers == 0 {
            let broker = Arc::clone(self);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("broker-{}", self.config.name))
                    .spawn(move || loop {
                        crossbeam::channel::select! {
                            recv(receiver) -> msg => match msg {
                                Ok(net_message) => broker.process_net(net_message),
                                Err(_) => break,
                            },
                            recv(shutdown_rx) -> _ => break,
                        }
                    })
                    .expect("failed to spawn broker thread"),
            );
            return BrokerHandle {
                broker: Arc::clone(self),
                shutdown: shutdown_tx,
                threads,
            };
        }

        let workers = self.config.verify_workers;
        drop(shutdown_rx);

        // Lane pool: partition-local messages apply here in parallel, one
        // FIFO lane per shard-key slice.  Bounded queues keep the
        // backpressure chain intact: a slow lane stalls the dispatcher.
        let lanes = self.config.apply_lanes.unwrap_or(workers).max(1);
        let lane_counters = self.pipeline.configure_lanes(lanes);
        let mut lane_txs = Vec::with_capacity(lanes);
        let mut lane_busy = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let (lane_tx, lane_rx) = crossbeam::channel::bounded::<LaneJob>(workers * 8);
            let busy = Arc::new(AtomicU64::new(0));
            let broker = Arc::clone(self);
            let counters = Arc::clone(&lane_counters);
            let in_flight = Arc::clone(&busy);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("broker-{}-lane-{lane}", self.config.name))
                    .spawn(move || {
                        while let Ok(job) = lane_rx.recv() {
                            match job {
                                LaneJob::Apply(net_message, message) => {
                                    broker.apply_net(net_message, Some(message));
                                    counters[lane].fetch_add(1, Ordering::Relaxed);
                                    // Release pairs with the dispatcher's
                                    // Acquire: a zero in-flight count proves
                                    // the apply's effects are visible.
                                    in_flight.fetch_sub(1, Ordering::Release);
                                }
                                LaneJob::Barrier(ack) => {
                                    // FIFO: every apply routed to this lane
                                    // before the barrier has already run.
                                    let _ = ack.send(());
                                }
                            }
                        }
                    })
                    .expect("failed to spawn broker apply lane"),
            );
            lane_txs.push(lane_tx);
            lane_busy.push(busy);
        }

        // Verify pool: each worker owns a message end to end.  It pulls a
        // batch off the inbox and stamps monotone tickets under the ingress
        // lock (stamp order == arrival order), decodes and cryptographically
        // pre-verifies outside any lock (the parallel stage), then takes the
        // router lock to restore global ticket order and route — so exactly
        // one thread routes at any moment, which is what keeps the lane
        // fast-path and the barrier protocol sound.  Compared to dedicated
        // ingress/dispatcher threads this costs two short critical sections
        // instead of two channel handoffs per message, and the batching
        // amortises both locks when the inbox runs deep.
        let ingress = Arc::new(Mutex::with_class(
            "pipeline.ingress",
            PipelineIngress { receiver, ticket: 0 },
        ));
        let router = Arc::new(Mutex::with_class(
            "pipeline.router",
            PipelineRouter {
                next_ticket: 1,
                reorder: BTreeMap::new(),
            },
        ));
        let lane_txs = Arc::new(lane_txs);
        let lane_busy = Arc::new(lane_busy);
        // A single-core host cannot run lanes concurrently with the router;
        // fanning out would only pay thread-handoff cost for no overlap, so
        // the router applies partition-local messages itself there.
        let eager_inline =
            std::thread::available_parallelism().is_ok_and(|cores| cores.get() == 1);
        for worker in 0..workers {
            let broker = Arc::clone(self);
            let ingress = Arc::clone(&ingress);
            let router = Arc::clone(&router);
            let lane_txs = Arc::clone(&lane_txs);
            let lane_busy = Arc::clone(&lane_busy);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("broker-{}-verify-{worker}", self.config.name))
                    .spawn(move || {
                        let mut stamped = Vec::with_capacity(INGRESS_BATCH);
                        let mut verified: Vec<(u64, NetMessage, Option<Message>)> =
                            Vec::with_capacity(INGRESS_BATCH);
                        loop {
                            {
                                let mut ingress = ingress.lock();
                                match ingress.receiver.recv() {
                                    Ok(net_message) => {
                                        ingress.ticket += 1;
                                        stamped.push((ingress.ticket, net_message));
                                    }
                                    // Inbox closed (shutdown): every stamped
                                    // ticket was inserted by its carrier, so
                                    // the reorder buffer has no gaps left.
                                    Err(_) => break,
                                }
                                while stamped.len() < INGRESS_BATCH {
                                    match ingress.receiver.try_recv() {
                                        Ok(net_message) => {
                                            ingress.ticket += 1;
                                            stamped.push((ingress.ticket, net_message));
                                        }
                                        Err(_) => break,
                                    }
                                }
                            }
                            verified.extend(stamped.drain(..).map(|(ticket, net_message)| {
                                let decoded = broker.decode_and_preverify(&net_message);
                                (ticket, net_message, decoded)
                            }));
                            let mut router = router.lock();
                            let router = &mut *router;
                            let mut batch = 0u64;
                            for (ticket, net_message, decoded) in verified.drain(..) {
                                if ticket != router.next_ticket {
                                    // An earlier ticket is still being
                                    // verified elsewhere: park this one.
                                    // Inserting can never fill the gap, so
                                    // there is nothing to drain here.
                                    broker.pipeline.count_reorder_wait();
                                    router.reorder.insert(ticket, (net_message, decoded));
                                    continue;
                                }
                                // In order — the common case: route without
                                // touching the reorder buffer, then drain any
                                // parked successors this unblocked.
                                broker.dispatch_apply(
                                    net_message,
                                    decoded,
                                    &lane_txs,
                                    &lane_busy,
                                    eager_inline,
                                );
                                router.next_ticket += 1;
                                batch += 1;
                                loop {
                                    let next = router.next_ticket;
                                    let Some((net_message, decoded)) =
                                        router.reorder.remove(&next)
                                    else {
                                        break;
                                    };
                                    broker.dispatch_apply(
                                        net_message,
                                        decoded,
                                        &lane_txs,
                                        &lane_busy,
                                        eager_inline,
                                    );
                                    router.next_ticket += 1;
                                    batch += 1;
                                }
                            }
                            if batch > 0 {
                                broker.pipeline.record_apply_batch(batch);
                            }
                        }
                        // The last worker out drops the final clones of the
                        // lane senders, closing each lane's queue after its
                        // last routed apply.
                    })
                    .expect("failed to spawn broker verify worker"),
            );
        }

        BrokerHandle {
            broker: Arc::clone(self),
            shutdown: shutdown_tx,
            threads,
        }
    }

    /// Routes one in-ticket-order completion through the partitioned apply
    /// stage: partition-local messages go to their shard lane, anything
    /// else drains the lanes (a barrier) and applies on the calling
    /// dispatcher thread.  Only ever called from the dispatcher, which is
    /// the sole sender on every lane — that is what makes the barrier
    /// protocol sound: once each busy lane acknowledges, no lane can have
    /// work in flight until the dispatcher routes more.
    fn dispatch_apply(
        &self,
        net_message: NetMessage,
        decoded: Option<Message>,
        lane_txs: &[crossbeam::channel::Sender<LaneJob>],
        lane_busy: &[Arc<AtomicU64>],
        eager_inline: bool,
    ) {
        let Some(message) = decoded else {
            // Undecodable traffic touches no state (`apply_net` only counts
            // it processed), so it needs neither a lane nor a drain.
            return self.apply_net(net_message, None);
        };
        match apply_route(&message) {
            ApplyRoute::Lane(key) => {
                let lane = (key % lane_txs.len() as u64) as usize;
                // On a host without spare cores the lane handoff cannot buy
                // concurrency that does not exist, so the router applies
                // partition-local messages itself: routing is paused while
                // it does, so partition FIFO holds trivially, and the
                // message still counts against its lane for load metrics.
                if eager_inline {
                    self.apply_net(net_message, Some(message));
                    self.pipeline.count_lane_message(lane);
                    return;
                }
                lane_busy[lane].fetch_add(1, Ordering::Relaxed);
                if lane_txs[lane]
                    .send(LaneJob::Apply(net_message, message))
                    .is_err()
                {
                    // Shutdown race: the lane is gone, nothing applies.
                    lane_busy[lane].fetch_sub(1, Ordering::Relaxed);
                }
            }
            ApplyRoute::Barrier => {
                // Ask every busy lane to acknowledge; lane FIFO means the
                // ack proves all its earlier applies completed.  Acks are
                // collected after all requests go out, so lanes drain in
                // parallel.
                let mut pending = Vec::new();
                for (lane, busy) in lane_busy.iter().enumerate() {
                    if busy.load(Ordering::Acquire) > 0 {
                        let (ack_tx, ack_rx) = crossbeam::channel::bounded::<()>(1);
                        if lane_txs[lane].send(LaneJob::Barrier(ack_tx)).is_ok() {
                            pending.push(ack_rx);
                        }
                    }
                }
                if !pending.is_empty() {
                    self.pipeline.count_barrier_drain();
                    for ack in pending {
                        let _ = ack.recv();
                    }
                }
                self.pipeline.count_barrier();
                self.apply_net(net_message, Some(message));
            }
        }
    }

    /// Processes one raw network message (parse, dispatch, reply).
    ///
    /// Public so the thread-free federation mode (deterministic pumping used
    /// by the replication proptests) can drive a broker without spawning its
    /// event-loop thread.  Runs both pipeline stages back to back on the
    /// calling thread, so inline and pipelined brokers apply the identical
    /// sequence of state changes.
    pub fn process_net(&self, net_message: NetMessage) {
        let decoded = self.decode_and_preverify(&net_message);
        self.apply_net(net_message, decoded);
    }

    /// Pipeline stage 1 — stateless: decodes the payload and runs the
    /// extension's [`BrokerExtension::preverify`] hook (signature/envelope
    /// checks that warm the verified-signature cache).  Safe to run
    /// concurrently from several verify workers.  Returns `None` for
    /// undecodable traffic.
    pub fn decode_and_preverify(&self, net_message: &NetMessage) -> Option<Message> {
        let message = Message::from_bytes(&net_message.payload).ok()?;
        let extension = self.extension.read().clone();
        if let Some(extension) = extension {
            extension.preverify(self, &message);
        }
        Some(message)
    }

    /// Pipeline stage 2 — serialized: applies one decoded message to broker
    /// state and sends replies.  Must observe messages in arrival order (the
    /// pipeline's ticket reorder guarantees it), which preserves per-sender
    /// FIFO and the inter-broker replay-protection semantics.  Relay kinds
    /// are dispatched here rather than in [`Broker::handle_message`] because
    /// they need the delivery's accumulated wire time for per-hop
    /// accounting.
    fn apply_net(&self, net_message: NetMessage, decoded: Option<Message>) {
        let Some(message) = decoded else {
            // Undecodable traffic is dropped silently — but it still counts
            // as processed, or quiescence would never be reached after
            // garbage arrives.
            self.processed.fetch_add(1, Ordering::Release);
            return;
        };
        let response = match message.kind {
            MessageKind::RelayViaBroker => {
                self.handle_relay_request(&message, net_message.wire_time)
            }
            MessageKind::BrokerRelay => {
                self.handle_broker_relay(&message, Some(net_message.from), net_message.wire_time);
                None
            }
            MessageKind::BrokerSync => {
                self.handle_sync(&message, Some(net_message.from));
                None
            }
            MessageKind::ShardQuery => {
                self.handle_shard_query(&message, Some(net_message.from));
                None
            }
            MessageKind::ShardResponse => {
                self.handle_shard_response(&message, Some(net_message.from));
                None
            }
            MessageKind::AntiEntropyDigest => {
                self.handle_anti_entropy_digest(&message, Some(net_message.from));
                None
            }
            MessageKind::AntiEntropySnapshot => {
                self.handle_anti_entropy_snapshot(&message, Some(net_message.from));
                None
            }
            MessageKind::AntiEntropyRange => {
                self.handle_anti_entropy_range(&message, Some(net_message.from));
                None
            }
            MessageKind::MembershipShuffle => {
                self.handle_membership_shuffle(&message, Some(net_message.from));
                None
            }
            MessageKind::MembershipShuffleReply => {
                self.handle_membership_shuffle_reply(&message, Some(net_message.from));
                None
            }
            MessageKind::PlumtreeIHave => {
                self.handle_plumtree_ihave(&message, Some(net_message.from));
                None
            }
            MessageKind::PlumtreeGraft => {
                self.handle_plumtree_graft(&message, Some(net_message.from));
                None
            }
            MessageKind::PlumtreePrune => {
                self.handle_plumtree_prune(&message, Some(net_message.from));
                None
            }
            MessageKind::SwimPing => {
                self.handle_swim_ping(&message, Some(net_message.from));
                None
            }
            MessageKind::SwimPingReq => {
                self.handle_swim_ping_req(&message, Some(net_message.from));
                None
            }
            MessageKind::SwimAck => {
                self.handle_swim_ack(&message, Some(net_message.from));
                None
            }
            _ => self.handle_message(&message),
        };
        // Belt and braces: any handler that queued gossip has flushed it
        // already, but an extension hooked in via `handle_message` may have
        // produced events of its own.
        self.flush_gossip();
        if let Some(response) = response {
            let _ = self
                .network
                // lint:allow(accounted-send, direct response to the requesting peer)
                .send(self.id, net_message.from, response.to_bytes());
        }
        // Only now — with every side effect applied and sent — does this
        // message count as processed (quiescence detection).
        self.processed.fetch_add(1, Ordering::Release);
    }

    /// Number of network messages this broker has fully processed.
    pub fn processed_count(&self) -> u64 {
        self.processed.load(Ordering::Acquire)
    }

    /// Dispatches a decoded message to the appropriate broker function.
    ///
    /// Public so tests (and the in-line, thread-free mode used by some
    /// benchmarks) can drive a broker without spawning its thread.
    pub fn handle_message(&self, message: &Message) -> Option<Message> {
        match message.kind {
            MessageKind::ConnectRequest => Some(self.handle_connect(message)),
            MessageKind::LoginRequest => Some(self.handle_login(message)),
            MessageKind::PublishAdvertisement => Some(self.handle_publish(message)),
            MessageKind::LookupRequest => self.handle_lookup(message),
            MessageKind::BrokerSync => {
                self.handle_sync(message, None);
                None
            }
            MessageKind::RelayViaBroker => self.handle_relay_request(message, Duration::ZERO),
            MessageKind::BrokerRelay => {
                self.handle_broker_relay(message, None, Duration::ZERO);
                None
            }
            MessageKind::ShardQuery => {
                self.handle_shard_query(message, None);
                None
            }
            MessageKind::ShardResponse => {
                self.handle_shard_response(message, None);
                None
            }
            MessageKind::AntiEntropyDigest => {
                self.handle_anti_entropy_digest(message, None);
                None
            }
            MessageKind::AntiEntropySnapshot => {
                self.handle_anti_entropy_snapshot(message, None);
                None
            }
            MessageKind::AntiEntropyRange => {
                self.handle_anti_entropy_range(message, None);
                None
            }
            MessageKind::MembershipShuffle => {
                self.handle_membership_shuffle(message, None);
                None
            }
            MessageKind::MembershipShuffleReply => {
                self.handle_membership_shuffle_reply(message, None);
                None
            }
            MessageKind::PlumtreeIHave => {
                self.handle_plumtree_ihave(message, None);
                None
            }
            MessageKind::PlumtreeGraft => {
                self.handle_plumtree_graft(message, None);
                None
            }
            MessageKind::PlumtreePrune => {
                self.handle_plumtree_prune(message, None);
                None
            }
            MessageKind::SwimPing => {
                self.handle_swim_ping(message, None);
                None
            }
            MessageKind::SwimPingReq => {
                self.handle_swim_ping_req(message, None);
                None
            }
            MessageKind::SwimAck => {
                self.handle_swim_ack(message, None);
                None
            }
            MessageKind::SecureConnectChallenge
            | MessageKind::SecureLoginRequest => {
                let extension = self.extension.read().clone();
                match extension {
                    Some(ext) => ext.handle(self, message).or_else(|| {
                        Some(self.reject(message, "secure primitive not handled by extension"))
                    }),
                    None => Some(self.reject(message, "secure primitives not enabled on this broker")),
                }
            }
            // Anything else is not a broker function.
            _ => Some(self.reject(message, "unsupported message kind")),
        }
    }

    fn reject(&self, message: &Message, reason: &str) -> Message {
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "error")
            .with_str("reason", reason)
    }

    /// `connect` handling: accept the connection and identify ourselves.
    fn handle_connect(&self, message: &Message) -> Message {
        self.mark_connected(message.sender);
        Message::new(MessageKind::ConnectResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("broker-name", &self.config.name)
    }

    /// `login` handling: check the (clear-text!) username and password
    /// against the central database.
    fn handle_login(&self, message: &Message) -> Message {
        if !self.is_connected(&message.sender) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "connect before login");
        }
        let (Some(username), Some(password)) = (
            message.element_str("username"),
            message.element_str("password"),
        ) else {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "missing credentials");
        };
        if !self.database.verify(&username, &password) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "authentication failed");
        }
        let session = self.establish_session(message.sender, &username);
        let groups = session
            .groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");
        Message::new(MessageKind::LoginResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("username", &username)
            .with_str("groups", &groups)
    }

    /// `publishAdvertisement` handling: index and distribute to group members.
    fn handle_publish(&self, message: &Message) -> Message {
        let Some(session) = self.session(&message.sender) else {
            return self.reject(message, "login required");
        };
        let (Some(group), Some(doc_type), Some(xml)) = (
            message.element_str("group"),
            message.element_str("doc-type"),
            message.element_str("xml"),
        ) else {
            return self.reject(message, "missing publish fields");
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return self.reject(message, "not a member of the target group");
        }
        // Give the security extension a veto: a signed advertisement whose
        // embedded credential is expired or revoked must not enter the index.
        let extension = self.extension.read().clone();
        if let Some(extension) = extension {
            if let Err(reason) =
                extension.vet_publish(self, message.sender, &group, &doc_type, &xml)
            {
                return self.reject(message, &reason);
            }
        }
        let pushed = self.index_and_distribute(message.sender, &group, &doc_type, &xml);
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("pushed-to", &pushed.to_string())
    }

    /// `lookup` handling: search the advertisement index, or — when the
    /// request carries a `member` element — answer a group-membership query.
    ///
    /// In full-replication mode every broker answers from its own copy.  In
    /// sharded mode the broker answers locally only when it is a ring
    /// replica of the queried key; otherwise it routes the query across the
    /// backbone with [`MessageKind::ShardQuery`] (one owning replica for
    /// keyed queries, scatter-gather over the backbone for group-wide
    /// searches whose owners are unknown) and replies to the client when the
    /// replica answers arrive — in which case this returns `None`.
    fn handle_lookup(&self, message: &Message) -> Option<Message> {
        let Some(session) = self.session(&message.sender) else {
            return Some(self.reject(message, "login required"));
        };
        let Some(group) = message.element_str("group") else {
            return Some(self.reject(message, "missing lookup fields"));
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return Some(self.reject(message, "not a member of the target group"));
        }

        // Membership query: is `member` currently part of `group`?
        if let Some(member) = message.element_str("member") {
            let Some(member) = PeerId::from_urn(&member) else {
                return Some(self.reject(message, "malformed member identifier"));
            };
            // Local ground truth (the member's session is here) or local
            // replica: answer directly.
            if self.sessions.read().contains_key(&member) || self.is_local_replica(&group, &member)
            {
                if self.is_sharded() {
                    self.federation.count_shard_hit();
                }
                return Some(self.membership_response(
                    message.request_id,
                    self.groups.is_member(&group, &member),
                ));
            }
            self.federation.count_shard_miss();
            return self.route_shard_query(message, &group, None, Some(member));
        }

        let Some(doc_type) = message.element_str("doc-type") else {
            return Some(self.reject(message, "missing lookup fields"));
        };
        let owner = message
            .element_str("owner")
            .and_then(|urn| PeerId::from_urn(&urn));

        match owner {
            // Keyed search: one shard owns (group, owner).
            Some(owner) if !self.is_local_replica(&group, &owner) => {
                self.federation.count_shard_miss();
                self.route_shard_query(message, &group, Some(&doc_type), Some(owner))
            }
            // Group-wide search in sharded mode: the owners (and hence the
            // owning shards) are unknown — scatter over the backbone and
            // merge.
            None if self.is_sharded() && !self.peer_brokers.read().is_empty() => {
                self.federation.count_shard_miss();
                self.route_shard_scatter(message, &group, &doc_type)
            }
            _ => {
                if self.is_sharded() {
                    self.federation.count_shard_hit();
                }
                let results = self.lookup(&group, &doc_type, owner);
                Some(self.lookup_response(message.request_id, results))
            }
        }
    }

    /// Builds the client-facing response of an advertisement search.
    fn lookup_response(&self, request_id: u64, results: Vec<String>) -> Message {
        let mut response = Message::new(MessageKind::LookupResponse, self.id, request_id)
            .with_str("status", "ok")
            .with_str("count", &results.len().to_string());
        for (i, xml) in results.into_iter().enumerate() {
            response.push_element(format!("adv-{i}"), xml.into_bytes());
        }
        response
    }

    /// Builds the client-facing response of a membership query.
    fn membership_response(&self, request_id: u64, is_member: bool) -> Message {
        Message::new(MessageKind::LookupResponse, self.id, request_id)
            .with_str("status", "ok")
            .with_str("member", if is_member { "true" } else { "false" })
    }

    /// Routes a keyed query (advertisement search with a known owner, or a
    /// membership probe) to one ring replica of its `(group, key)`,
    /// rotating deterministically across the replica set so repeated lookups
    /// of a hot key spread over all K replicas instead of hammering the
    /// first one on the ring walk.
    fn route_shard_query(
        &self,
        message: &Message,
        group: &GroupId,
        doc_type: Option<&str>,
        key_peer: Option<PeerId>,
    ) -> Option<Message> {
        let Some(key) = key_peer else {
            return Some(self.reject(message, "malformed shard query"));
        };
        let candidates: Vec<PeerId> = self
            .shard_replicas(group, &key)
            .into_iter()
            .filter(|replica| *replica != self.id)
            .collect();
        if candidates.is_empty() {
            // No remote replica (degenerate ring) — answer from what we have.
            return Some(match doc_type {
                Some(doc_type) => self.lookup_response(
                    message.request_id,
                    self.lookup(group, doc_type, Some(key)),
                ),
                None => self
                    .membership_response(message.request_id, self.groups.is_member(group, &key)),
            });
        }
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        // Link-cost-aware replica choice: prefer the replicas behind the
        // cheapest link from this broker (per-edge LinkModel — a WAN-priced
        // replica loses to a LAN one), then rotate among the cheapest using
        // the monotone query identifier, so the choice stays deterministic
        // for reproducible tests yet spreads a hot key's queries over every
        // equally cheap replica.  With uniform links this degenerates to the
        // original full rotation.
        let costs: Vec<Duration> = candidates
            .iter()
            .map(|replica| {
                self.network
                    .link_between(self.id, *replica)
                    .transfer_time(SHARD_QUERY_NOMINAL_BYTES)
            })
            .collect();
        let cheapest_cost = *costs.iter().min().expect("candidates is non-empty");
        let cheapest: Vec<PeerId> = candidates
            .iter()
            .zip(&costs)
            .filter(|(_, cost)| **cost == cheapest_cost)
            .map(|(replica, _)| *replica)
            .collect();
        let target = cheapest[(query_id as usize) % cheapest.len()];
        let membership = doc_type.is_none();
        let mut query = Message::new(MessageKind::ShardQuery, self.id, 0)
            .with_str("query", &query_id.to_string())
            .with_str("group", group.as_str());
        match doc_type {
            Some(doc_type) => {
                query = query
                    .with_str("doc-type", doc_type)
                    .with_str("owner", &key.to_urn());
            }
            None => query = query.with_str("member", &key.to_urn()),
        }
        if self.send_sequenced(target, query, Duration::ZERO).is_none() {
            // The replica is gone; fail the query towards the client rather
            // than leaving it waiting for a response that cannot come.
            return Some(self.reject(message, "shard replica unreachable"));
        }
        self.pending_lookups.lock().insert(
            query_id,
            PendingLookup {
                client: message.sender,
                client_request: message.request_id,
                remaining: 1,
                adv_results: BTreeMap::new(),
                is_member: false,
                membership,
            },
        );
        None
    }

    /// Scatters a group-wide advertisement search to every peer broker and
    /// seeds the merge state with this broker's own shard.
    fn route_shard_scatter(
        &self,
        message: &Message,
        group: &GroupId,
        doc_type: &str,
    ) -> Option<Message> {
        let peers = self.peer_brokers.read().clone();
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let mut adv_results = BTreeMap::new();
        for (owner, version, xml) in self.lookup_versioned(group, doc_type, None) {
            adv_results.insert(owner, (version, xml));
        }
        let mut remaining = 0usize;
        for target in peers {
            let query = Message::new(MessageKind::ShardQuery, self.id, 0)
                .with_str("query", &query_id.to_string())
                .with_str("group", group.as_str())
                .with_str("doc-type", doc_type);
            if self.send_sequenced(target, query, Duration::ZERO).is_some() {
                remaining += 1;
            }
        }
        if remaining == 0 {
            // Every peer unreachable: answer from the local shard alone.
            let results = adv_results.into_values().map(|(_, xml)| xml).collect();
            return Some(self.lookup_response(message.request_id, results));
        }
        self.pending_lookups.lock().insert(
            query_id,
            PendingLookup {
                client: message.sender,
                client_request: message.request_id,
                remaining,
                adv_results,
                is_member: false,
                membership: false,
            },
        );
        None
    }

    /// Serves a `ShardQuery` arriving over the backbone: after the same
    /// admission control as gossip, answer from the local shard with a
    /// `ShardResponse`.  Signed advertisements are returned verbatim — the
    /// XMLdsig envelope travels the extra hop unmodified, so client-side
    /// validation is unaffected by where the entry happened to live.
    fn handle_shard_query(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let (Some(query), Some(group)) = (
            message.element_str("query"),
            message.element_str("group"),
        ) else {
            return;
        };
        let group = GroupId::new(group);
        let mut response = Message::new(MessageKind::ShardResponse, self.id, 0)
            .with_str("query", &query);
        if let Some(member) = message
            .element_str("member")
            .and_then(|urn| PeerId::from_urn(&urn))
        {
            response = response.with_str(
                "member",
                if self.groups.is_member(&group, &member) {
                    "true"
                } else {
                    "false"
                },
            );
        } else {
            let Some(doc_type) = message.element_str("doc-type") else {
                return;
            };
            let owner = message
                .element_str("owner")
                .and_then(|urn| PeerId::from_urn(&urn));
            let results = self.lookup_versioned(&group, &doc_type, owner);
            response = response.with_str("count", &results.len().to_string());
            for (i, (owner, version, xml)) in results.into_iter().enumerate() {
                response.push_element(format!("r{i}-owner"), owner.to_urn().into_bytes());
                response.push_element(format!("r{i}-vseq"), version.0.to_string().into_bytes());
                response.push_element(format!("r{i}-vorigin"), version.1.to_urn().into_bytes());
                response.push_element(format!("r{i}-xml"), xml.into_bytes());
            }
        }
        self.send_sequenced(message.sender, response, Duration::ZERO);
    }

    /// Merges a replica's `ShardResponse` into the pending lookup it answers
    /// and, once every replica reported, replies to the waiting client.
    fn handle_shard_response(&self, message: &Message, transport_from: Option<PeerId>) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let Some(query) = message
            .element_str("query")
            .and_then(|q| q.parse::<u64>().ok())
        else {
            return;
        };
        let finished = {
            let mut pending = self.pending_lookups.lock();
            let Some(state) = pending.get_mut(&query) else {
                return; // unknown or already-answered query
            };
            if let Some(member) = message.element_str("member") {
                state.is_member |= member == "true";
            }
            let count = message
                .element_str("count")
                .and_then(|c| c.parse::<usize>().ok())
                .unwrap_or(0);
            for i in 0..count {
                let (Some(owner), Some(vseq), Some(vorigin), Some(xml)) = (
                    message
                        .element_str(&format!("r{i}-owner"))
                        .and_then(|urn| PeerId::from_urn(&urn)),
                    message
                        .element_str(&format!("r{i}-vseq"))
                        .and_then(|s| s.parse::<u64>().ok()),
                    message
                        .element_str(&format!("r{i}-vorigin"))
                        .and_then(|urn| PeerId::from_urn(&urn)),
                    message.element_str(&format!("r{i}-xml")),
                ) else {
                    continue;
                };
                let version = (vseq, vorigin);
                match state.adv_results.entry(owner) {
                    std::collections::btree_map::Entry::Occupied(mut stored) => {
                        // Replicas may race a re-publish: last writer wins,
                        // exactly as it does in the index itself.
                        if version > stored.get().0 {
                            stored.insert((version, xml));
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert((version, xml));
                    }
                }
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                pending.remove(&query)
            } else {
                None
            }
        };
        if let Some(state) = finished {
            self.finish_pending_lookup(state);
        }
    }

    /// Answers the client of a (fully or best-effort) completed routed
    /// lookup with the results merged so far.
    fn finish_pending_lookup(&self, state: PendingLookup) {
        let response = if state.membership {
            self.membership_response(state.client_request, state.is_member)
        } else {
            let results = state
                .adv_results
                .into_values()
                .map(|(_, xml)| xml)
                .collect();
            self.lookup_response(state.client_request, results)
        };
        // lint:allow(accounted-send, lookup response to the requesting client)
        let _ = self.network.send(self.id, state.client, response.to_bytes());
    }
}

/// Handle of a running broker: the classic single event-loop thread, or the
/// ingress/verify/apply threads of a pipelined broker.
pub struct BrokerHandle {
    broker: Arc<Broker>,
    shutdown: crossbeam::channel::Sender<()>,
    threads: Vec<JoinHandle<()>>,
}

impl BrokerHandle {
    /// The broker this handle controls.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The broker's peer identifier.
    pub fn id(&self) -> PeerId {
        self.broker.id()
    }

    /// Stops the broker's event loop(s) and waits for the threads to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.shutdown.send(());
        // Unregistering closes the network channel, which wakes whichever
        // verify worker holds the ingress lock; each worker finishes routing
        // the messages it already stamped before exiting, and the last one
        // out drops the lane senders — so every in-flight message still
        // reaches the apply stage before the pipeline winds down.
        self.broker.network.unregister(&self.broker.id);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Default timeout used by client primitives waiting for a broker response.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Nominal shard-query size used to price replica links against each other
/// (queries are small; only the relative order of the links matters).
const SHARD_QUERY_NOMINAL_BYTES: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkModel;
    use jxta_crypto::drbg::HmacDrbg;

    fn setup() -> (Arc<SimNetwork>, Arc<UserDatabase>, Arc<Broker>, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed_u64(0xB20C);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math"), GroupId::new("chem")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let broker = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::default(),
            Arc::clone(&network),
            Arc::clone(&database),
        );
        (network, database, broker, rng)
    }

    fn connect_and_login(broker: &Broker, peer: PeerId, username: &str, password: &str) -> Message {
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        let resp = broker.handle_message(&connect).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        let login = Message::new(MessageKind::LoginRequest, peer, 2)
            .with_str("username", username)
            .with_str("password", password);
        broker.handle_message(&login).unwrap()
    }

    /// Every membership/session mutation primitive must bump the repair
    /// epoch on its own: PR 8's lint demands `touch_repair_state` at each
    /// mutation site, and pushing the bump *into* the primitives makes the
    /// stale-tree-digest bug (a forgetful future caller serving old section
    /// digests forever) structurally impossible.
    #[test]
    fn mutation_primitives_bump_the_repair_epoch() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let origin = PeerId::random(&mut rng);
        let group = GroupId::new("math");
        let epoch = |b: &Broker| b.repair_epoch.load(Ordering::Acquire);

        let before = epoch(&broker);
        broker.stamp_membership(&group, peer, (1, PRESENCE_JOIN, origin));
        assert!(epoch(&broker) > before, "stamp_membership must touch");

        let before = epoch(&broker);
        broker.forget_membership_stamps(&peer);
        assert!(epoch(&broker) > before, "forget_membership_stamps must touch");

        // An all-zero origin orders below any random broker id, forcing the
        // yield (non-re-assert) branch — the path that had no touch of its
        // own before this PR.
        connect_and_login(&broker, peer, "alice", "pw-a");
        let low_origin = PeerId::from_bytes([0u8; 16]);
        let before = epoch(&broker);
        assert!(!broker.yield_to_remote_join(peer, low_origin));
        assert!(epoch(&broker) > before, "yield_to_remote_join must touch");

        // A peer with neither session nor shadow hits absorb's fall-through
        // branch, the other previously-uncovered path.
        let stranger = PeerId::random(&mut rng);
        let before = epoch(&broker);
        assert!(!broker.absorb_remote_leave(stranger));
        assert!(epoch(&broker) > before, "absorb_remote_leave must touch");
        let _ = origin;
    }

    /// The digest-level regression: prime the cached membership tree, then
    /// mutate through a primitive alone (exactly what a caller that forgot
    /// its own `touch_repair_state` would do) and verify the next tree is
    /// rebuilt rather than served stale.
    #[test]
    fn repair_tree_never_serves_stale_digests_after_primitive_mutation() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        connect_and_login(&broker, peer, "alice", "pw-a");
        let own_id = broker.id();
        let primed = broker.repair_section_tree('m', &own_id).root().digest();
        // Re-reading without a mutation serves the cached tree.
        assert_eq!(
            broker.repair_section_tree('m', &own_id).root().digest(),
            primed
        );
        // A leave applied through the primitive alone must invalidate it.
        broker.groups.leave_all(&peer);
        broker.forget_membership_stamps(&peer);
        let healed = broker.repair_section_tree('m', &own_id).root().digest();
        assert_ne!(healed, primed, "membership tree digest served stale");
    }

    /// End-to-end sanity that the lock-order detector is live inside broker
    /// machinery: a normal workload populates the acquisition-order graph
    /// with broker lock classes and records no violations.
    #[test]
    fn lock_order_detector_observes_broker_classes() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        connect_and_login(&broker, peer, "alice", "pw-a");
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 3)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<adv/>");
        broker.handle_message(&publish).unwrap();
        let edges = parking_lot::lock_order::graph_edges();
        assert!(
            edges
                .iter()
                .any(|(held, _)| held.starts_with("broker.")
                    || held.starts_with("groups.")
                    || held.starts_with("database.")),
            "no broker lock classes in the order graph: {edges:?}"
        );
        assert!(
            parking_lot::lock_order::violations()
                .iter()
                .all(|v| v.held.starts_with("test.")),
            "broker workload produced lock-order violations"
        );
    }

    #[test]
    fn connect_then_login_success() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "pw-a");
        assert_eq!(resp.kind, MessageKind::LoginResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert!(resp.element_str("groups").unwrap().contains("math"));
        assert_eq!(broker.session_count(), 1);
        assert!(broker.groups().is_member(&GroupId::new("math"), &peer));
        assert!(broker.groups().is_member(&GroupId::new("chem"), &peer));
    }

    #[test]
    fn login_requires_prior_connect() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let login = Message::new(MessageKind::LoginRequest, peer, 1)
            .with_str("username", "alice")
            .with_str("password", "pw-a");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("connect"));
    }

    #[test]
    fn login_with_wrong_password_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "wrong");
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert_eq!(broker.session_count(), 0);
    }

    #[test]
    fn login_with_missing_fields_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        broker.handle_message(&Message::new(MessageKind::ConnectRequest, peer, 1));
        let login = Message::new(MessageKind::LoginRequest, peer, 2).with_str("username", "alice");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn publish_requires_login_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);

        // Without login.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 3)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Logged in but publishing into a group the user is not a member of.
        connect_and_login(&broker, peer, "bob", "pw-b");
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 4)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Correct group succeeds.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 5)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn publish_pushes_to_other_group_members() {
        let (net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        // Bob needs a registered endpoint to receive the push.
        let bob_rx = net.register(bob);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        let publish = Message::new(MessageKind::PublishAdvertisement, alice, 9)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<adv>alice</adv>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element_str("pushed-to").unwrap(), "1");

        let pushed = bob_rx.try_recv().unwrap();
        let pushed_msg = Message::from_bytes(&pushed.payload).unwrap();
        assert_eq!(pushed_msg.kind, MessageKind::AdvertisementPush);
        assert_eq!(pushed_msg.element_str("xml").unwrap(), "<adv>alice</adv>");
    }

    #[test]
    fn lookup_filters_by_type_owner_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        broker.index_and_distribute(bob, &GroupId::new("math"), "jxta:PipeAdvertisement", "<b/>");
        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:FileAdvertisement", "<f/>");
        broker.index_and_distribute(alice, &GroupId::new("chem"), "jxta:PipeAdvertisement", "<c/>");

        // All pipe advertisements in math.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 10)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "2");

        // Restricted to one owner.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 11)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &alice.to_urn());
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "1");
        assert_eq!(resp.element_str("adv-0").unwrap(), "<a/>");

        // Bob is not in chem, so lookups there are rejected.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 12)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn lookup_unknown_group_returns_empty() {
        let (_net, _db, broker, _rng) = setup();
        assert!(broker.lookup(&GroupId::new("ghost"), "jxta:PipeAdvertisement", None).is_empty());
    }

    #[test]
    fn secure_kinds_rejected_without_extension() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("not enabled"));
    }

    struct EchoExtension;
    impl BrokerExtension for EchoExtension {
        fn handle(&self, broker: &Broker, message: &Message) -> Option<Message> {
            Some(
                Message::new(MessageKind::SecureConnectResponse, broker.id(), message.request_id)
                    .with_str("status", "ok"),
            )
        }
    }

    #[test]
    fn extension_receives_secure_kinds() {
        let (_net, _db, broker, mut rng) = setup();
        broker.set_extension(Arc::new(EchoExtension));
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::SecureConnectResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn unsupported_kind_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::PeerText, peer, 1).with_str("text", "hi broker");
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::Ack);
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn drop_session_removes_memberships() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        connect_and_login(&broker, peer, "alice", "pw-a");
        assert!(broker.session(&peer).is_some());
        broker.drop_session(&peer);
        assert!(broker.session(&peer).is_none());
        assert!(!broker.is_connected(&peer));
        assert!(!broker.groups().is_member(&GroupId::new("math"), &peer));
    }

    #[test]
    fn peer_broker_registration_is_idempotent_and_excludes_self() {
        let (_net, _db, broker, mut rng) = setup();
        let other = PeerId::random(&mut rng);
        broker.add_peer_broker(other);
        broker.add_peer_broker(other);
        broker.add_peer_broker(broker.id());
        assert_eq!(broker.peer_brokers(), vec![other]);
        assert!(broker.is_peer_broker(&other));
        assert!(!broker.is_peer_broker(&broker.id()));
    }

    #[test]
    fn sync_from_unknown_origin_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let rogue = PeerId::random(&mut rng);
        let peer = PeerId::random(&mut rng);
        let sync = Message::new(MessageKind::BrokerSync, rogue, 0)
            .with_str("op", "join")
            .with_str("peer", &peer.to_urn())
            .with_str("groups", "math")
            .with_str("seq", "1");
        assert!(broker.handle_message(&sync).is_none(), "gossip is never acked");
        assert_eq!(broker.federation_stats().rejected_unknown_origin, 1);
        assert!(broker.home_of(&peer).is_none(), "nothing was applied");
    }

    #[test]
    fn replayed_sync_is_rejected_and_not_reapplied() {
        let (_net, _db, broker, mut rng) = setup();
        let origin = PeerId::random(&mut rng);
        let peer = PeerId::random(&mut rng);
        broker.add_peer_broker(origin);
        let sync = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "join")
            .with_str("peer", &peer.to_urn())
            .with_str("groups", "math,chem")
            .with_str("seq", "1");
        broker.handle_message(&sync);
        assert_eq!(broker.federation_stats().syncs_applied, 1);
        assert_eq!(broker.home_of(&peer), Some(origin));
        assert!(broker.groups().is_member(&GroupId::new("math"), &peer));

        // Replaying the captured gossip verbatim changes nothing.
        let routing_before = broker.routing_snapshot();
        broker.handle_message(&sync);
        assert_eq!(broker.federation_stats().rejected_replayed, 1);
        assert_eq!(broker.federation_stats().syncs_applied, 1);
        assert_eq!(broker.routing_snapshot(), routing_before);
    }

    #[test]
    fn replicated_publish_fills_index_and_leave_clears_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let origin = PeerId::random(&mut rng);
        let owner = PeerId::random(&mut rng);
        broker.add_peer_broker(origin);
        let publish = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "publish")
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &owner.to_urn())
            .with_str("xml", "<remote/>")
            .with_str("seq", "1");
        broker.handle_message(&publish);
        assert_eq!(
            broker.lookup(&GroupId::new("math"), "jxta:PipeAdvertisement", Some(owner)),
            vec!["<remote/>".to_string()]
        );

        let join = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "join")
            .with_str("peer", &owner.to_urn())
            .with_str("groups", "math")
            .with_str("seq", "2");
        broker.handle_message(&join);
        assert!(broker.groups().is_member(&GroupId::new("math"), &owner));
        let leave = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "leave")
            .with_str("peer", &owner.to_urn())
            .with_str("seq", "3");
        broker.handle_message(&leave);
        assert!(!broker.groups().is_member(&GroupId::new("math"), &owner));
        assert!(broker.home_of(&owner).is_none());
        assert_eq!(broker.federation_stats().syncs_applied, 3);
    }

    #[test]
    fn anti_entropy_traffic_from_unknown_origin_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let rogue = PeerId::random(&mut rng);
        let digest = Message::new(MessageKind::AntiEntropyDigest, rogue, 0)
            .with_str("seq", "1")
            .with_str("a-hash", "1")
            .with_str("m-hash", "2")
            .with_str("p-hash", "3")
            .with_str("x-hash", "4");
        assert!(broker.handle_message(&digest).is_none(), "digests are never acked");
        assert_eq!(broker.federation_stats().rejected_unknown_origin, 1);

        // A forged snapshot from outside the federation applies nothing.
        let owner = PeerId::random(&mut rng);
        let snapshot = Message::new(MessageKind::AntiEntropySnapshot, rogue, 0)
            .with_str("seq", "2")
            .with_str("want", "")
            .with_str("a-count", "1")
            .with_str("a0-group", "math")
            .with_str("a0-owner", &owner.to_urn())
            .with_str("a0-type", "jxta:PipeAdvertisement")
            .with_str("a0-xml", "<forged/>")
            .with_str("a0-vseq", "9")
            .with_str("a0-vorigin", &rogue.to_urn());
        broker.handle_message(&snapshot);
        assert_eq!(broker.federation_stats().rejected_unknown_origin, 2);
        assert!(broker.advertisement_snapshot().is_empty());
        assert_eq!(broker.federation_stats().entries_repaired, 0);
    }

    /// Regression: merging an n-entry snapshot must stay O(n) element
    /// visits.  The old merge resolved every `a{i}-*` name with the linear
    /// `Message::element` scan — ~1.8 × 10⁹ visits for the 10⁴ entries
    /// below; the indexed merge needs only the handful of whole-message
    /// scans outside the per-entry loop.
    #[test]
    fn merging_large_snapshot_is_linear_in_element_visits() {
        let (_net, _db, broker, mut rng) = setup();
        let origin = PeerId::random(&mut rng);
        broker.add_peer_broker(origin);
        let entries = 10_000usize;
        let mut snapshot = Message::new(MessageKind::AntiEntropySnapshot, origin, 0)
            .with_str("want", "")
            .with_str("a-count", &entries.to_string());
        for i in 0..entries {
            let owner = PeerId::random(&mut rng);
            snapshot.push_element(format!("a{i}-group"), b"math".to_vec());
            snapshot.push_element(format!("a{i}-owner"), owner.to_urn().into_bytes());
            snapshot.push_element(format!("a{i}-type"), b"jxta:PipeAdvertisement".to_vec());
            snapshot.push_element(format!("a{i}-xml"), format!("<adv-{i}/>").into_bytes());
            snapshot.push_element(format!("a{i}-vseq"), b"1".to_vec());
            snapshot.push_element(format!("a{i}-vorigin"), origin.to_urn().into_bytes());
        }
        let before = crate::message::scan_probe::visited();
        let repaired = broker.merge_repair_snapshot(origin, &snapshot);
        let visited = crate::message::scan_probe::visited() - before;
        assert_eq!(repaired, entries as u64);
        // A generous linear bound (the message holds ~60 000 elements, so a
        // few whole-message scans are expected); the quadratic merge clocks
        // in three orders of magnitude above it.
        assert!(
            visited < 2_000_000,
            "merge visited {visited} elements for {entries} entries — \
             the O(n²) linear-scan merge is back"
        );
    }

    #[test]
    fn relay_to_locally_homed_peer_delivers_payload() {
        let (net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        let bob_rx = net.register(bob);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        let inner = Message::new(MessageKind::PeerText, alice, 7)
            .with_str("group", "math")
            .with_str("text", "via broker");
        let relay = Message::new(MessageKind::RelayViaBroker, alice, 8)
            .with_str("to", &bob.to_urn())
            .with_element("payload", inner.to_bytes());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element_str("route").unwrap(), "local");

        let delivered = bob_rx.try_recv().unwrap();
        let delivered = Message::from_bytes(&delivered.payload).unwrap();
        assert_eq!(delivered, inner, "the relayed payload arrives unmodified");
        assert_eq!(broker.federation_stats().relays_delivered, 1);
    }

    #[test]
    fn relay_requires_login_and_known_destination() {
        let (_net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let stranger = PeerId::random(&mut rng);

        let relay = Message::new(MessageKind::RelayViaBroker, alice, 1)
            .with_str("to", &stranger.to_urn())
            .with_element("payload", b"x".to_vec());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("login"));

        connect_and_login(&broker, alice, "alice", "pw-a");
        let relay = Message::new(MessageKind::RelayViaBroker, alice, 2)
            .with_str("to", &stranger.to_urn())
            .with_element("payload", b"x".to_vec());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("unknown destination"));
        assert_eq!(broker.federation_stats().relays_failed, 1);
    }

    #[test]
    fn spawned_broker_answers_over_the_network() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);

        let connect = Message::new(MessageKind::ConnectRequest, peer, 77);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let reply_msg = Message::from_bytes(&reply.payload).unwrap();
        assert_eq!(reply_msg.kind, MessageKind::ConnectResponse);
        assert_eq!(reply_msg.request_id, 77);
        handle.shutdown();
    }

    #[test]
    fn undecodable_traffic_is_ignored_by_running_broker() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);
        net.send(peer, handle.id(), b"garbage".to_vec()).unwrap();
        // A valid message afterwards still gets served.
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(Message::from_bytes(&reply.payload).unwrap().kind, MessageKind::ConnectResponse);
        handle.shutdown();
    }
}
