//! The Broker Module.
//!
//! Brokers are the special peers that control access to the JXTA-Overlay
//! network: they authenticate end users against the central database, keep a
//! global index of resources (advertisements) and propagate peer information
//! across group members, acting as beacons for newly arrived client peers
//! (paper, §2.1).
//!
//! A [`Broker`] owns its state; [`Broker::spawn`] starts the broker event
//! loop on its own thread so that client primitives interact with it purely
//! through the simulated network, exactly like a remote broker process.
//! Broker *functions* are "always executed as a result of messages sent via
//! Client Module primitives" (§2.2), which maps to the message handlers in
//! [`Broker::handle_message`].
//!
//! The plain broker understands only the insecure message kinds.  The secure
//! extension registers a [`BrokerExtension`] that handles the
//! `SecureConnect*`/`SecureLogin*` kinds; this keeps the Broker Module open
//! for extension without the security crate having to reimplement indexing
//! and group management.

use crate::database::UserDatabase;
use crate::group::{GroupId, GroupRegistry};
use crate::id::PeerId;
use crate::message::{Message, MessageKind};
use crate::net::{NetMessage, SimNetwork};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a broker peer.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Human-readable broker name (the paper's brokers have well-known
    /// identifiers such as DNS names).
    pub name: String,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            name: "broker".to_string(),
        }
    }
}

/// Hook that lets the security extension handle additional message kinds.
pub trait BrokerExtension: Send + Sync {
    /// Handles `message` if it belongs to the extension.
    ///
    /// Returns `Some(response)` to send a reply back to the sender, or `None`
    /// if the message kind is not handled by this extension (the broker then
    /// replies with a generic rejection).
    fn handle(&self, broker: &Broker, message: &Message) -> Option<Message>;
}

/// An authenticated client session as seen by the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerSession {
    /// The authenticated end-user name.
    pub username: String,
    /// Groups the user belongs to.
    pub groups: Vec<GroupId>,
}

/// Advertisement index for one group: (owner, doc type) → XML document.
type GroupAdvertisements = HashMap<(PeerId, String), String>;

/// The broker peer.
pub struct Broker {
    id: PeerId,
    config: BrokerConfig,
    network: Arc<SimNetwork>,
    database: Arc<UserDatabase>,
    groups: GroupRegistry,
    /// Global advertisement index: group → (owner, doc type) → XML.
    advertisements: RwLock<HashMap<GroupId, GroupAdvertisements>>,
    /// Connected (but not necessarily logged-in) peers.
    connected: RwLock<HashMap<PeerId, ()>>,
    /// Logged-in sessions.
    sessions: RwLock<HashMap<PeerId, BrokerSession>>,
    extension: RwLock<Option<Arc<dyn BrokerExtension>>>,
}

impl Broker {
    /// Creates a broker with the given identifier.
    pub fn new(
        id: PeerId,
        config: BrokerConfig,
        network: Arc<SimNetwork>,
        database: Arc<UserDatabase>,
    ) -> Arc<Self> {
        Arc::new(Broker {
            id,
            config,
            network,
            database,
            groups: GroupRegistry::new(),
            advertisements: RwLock::new(HashMap::new()),
            connected: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            extension: RwLock::new(None),
        })
    }

    /// The broker's peer identifier (its "well-known" address).
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The broker's configuration.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// The network this broker is attached to.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The central user database (brokers are the only entities allowed to
    /// touch it).
    pub fn database(&self) -> &Arc<UserDatabase> {
        &self.database
    }

    /// The broker's group registry.
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Installs the security extension.
    pub fn set_extension(&self, extension: Arc<dyn BrokerExtension>) {
        *self.extension.write() = Some(extension);
    }

    /// Returns `true` if `peer` completed the connect step.
    pub fn is_connected(&self, peer: &PeerId) -> bool {
        self.connected.read().contains_key(peer)
    }

    /// Returns the session of a logged-in peer.
    pub fn session(&self, peer: &PeerId) -> Option<BrokerSession> {
        self.sessions.read().get(peer).cloned()
    }

    /// Number of logged-in peers.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Marks a peer as connected (used by both the plain handler and the
    /// secure extension).
    pub fn mark_connected(&self, peer: PeerId) {
        self.connected.write().insert(peer, ());
    }

    /// Records a successful login and joins the user's groups.  Returns the
    /// created session.
    pub fn establish_session(&self, peer: PeerId, username: &str) -> BrokerSession {
        let groups = self.database.groups_of(username);
        for g in &groups {
            self.groups.join(g.clone(), peer);
        }
        let session = BrokerSession {
            username: username.to_string(),
            groups,
        };
        self.sessions.write().insert(peer, session.clone());
        session
    }

    /// Removes a peer's session and group memberships (logout / departure).
    pub fn drop_session(&self, peer: &PeerId) {
        self.sessions.write().remove(peer);
        self.connected.write().remove(peer);
        self.groups.leave_all(peer);
    }

    /// Stores an advertisement in the global index and pushes it to the other
    /// members of the group.  Returns the number of peers it was pushed to.
    pub fn index_and_distribute(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
    ) -> usize {
        self.advertisements
            .write()
            .entry(group.clone())
            .or_default()
            .insert((from, doc_type.to_string()), xml.to_string());

        let mut pushed = 0;
        for member in self.groups.members(group) {
            if member == from {
                continue;
            }
            let push = Message::new(MessageKind::AdvertisementPush, self.id, 0)
                .with_str("group", group.as_str())
                .with_str("doc-type", doc_type)
                .with_str("xml", xml);
            if self.network.send(self.id, member, push.to_bytes()).is_ok() {
                pushed += 1;
            }
        }
        pushed
    }

    /// Looks up advertisements of a given type within a group, optionally
    /// restricted to one owner.
    pub fn lookup(
        &self,
        group: &GroupId,
        doc_type: &str,
        owner: Option<PeerId>,
    ) -> Vec<String> {
        let advertisements = self.advertisements.read();
        let Some(index) = advertisements.get(group) else {
            return Vec::new();
        };
        let mut results: Vec<(&(PeerId, String), &String)> = index
            .iter()
            .filter(|((adv_owner, adv_type), _)| {
                adv_type == doc_type && owner.is_none_or(|o| *adv_owner == o)
            })
            .collect();
        // Deterministic order keeps experiments and tests reproducible.
        results.sort_by_key(|((owner, _), _)| *owner);
        results.into_iter().map(|(_, xml)| xml.clone()).collect()
    }

    /// Starts the broker's event loop on a dedicated thread.
    pub fn spawn(self: &Arc<Self>) -> BrokerHandle {
        let receiver = self.network.register(self.id);
        let broker = Arc::clone(self);
        let (shutdown_tx, shutdown_rx) = crossbeam::channel::bounded::<()>(1);
        let thread = std::thread::Builder::new()
            .name(format!("broker-{}", self.config.name))
            .spawn(move || loop {
                crossbeam::channel::select! {
                    recv(receiver) -> msg => match msg {
                        Ok(net_message) => broker.process(net_message),
                        Err(_) => break,
                    },
                    recv(shutdown_rx) -> _ => break,
                }
            })
            .expect("failed to spawn broker thread");
        BrokerHandle {
            broker: Arc::clone(self),
            shutdown: shutdown_tx,
            thread: Some(thread),
        }
    }

    /// Processes one raw network message (parse, dispatch, reply).
    fn process(&self, net_message: NetMessage) {
        let message = match Message::from_bytes(&net_message.payload) {
            Ok(m) => m,
            Err(_) => return, // undecodable traffic is dropped silently
        };
        if let Some(response) = self.handle_message(&message) {
            let _ = self
                .network
                .send(self.id, net_message.from, response.to_bytes());
        }
    }

    /// Dispatches a decoded message to the appropriate broker function.
    ///
    /// Public so tests (and the in-line, thread-free mode used by some
    /// benchmarks) can drive a broker without spawning its thread.
    pub fn handle_message(&self, message: &Message) -> Option<Message> {
        match message.kind {
            MessageKind::ConnectRequest => Some(self.handle_connect(message)),
            MessageKind::LoginRequest => Some(self.handle_login(message)),
            MessageKind::PublishAdvertisement => Some(self.handle_publish(message)),
            MessageKind::LookupRequest => Some(self.handle_lookup(message)),
            MessageKind::SecureConnectChallenge
            | MessageKind::SecureLoginRequest => {
                let extension = self.extension.read().clone();
                match extension {
                    Some(ext) => ext.handle(self, message).or_else(|| {
                        Some(self.reject(message, "secure primitive not handled by extension"))
                    }),
                    None => Some(self.reject(message, "secure primitives not enabled on this broker")),
                }
            }
            // Anything else is not a broker function.
            _ => Some(self.reject(message, "unsupported message kind")),
        }
    }

    fn reject(&self, message: &Message, reason: &str) -> Message {
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "error")
            .with_str("reason", reason)
    }

    /// `connect` handling: accept the connection and identify ourselves.
    fn handle_connect(&self, message: &Message) -> Message {
        self.mark_connected(message.sender);
        Message::new(MessageKind::ConnectResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("broker-name", &self.config.name)
    }

    /// `login` handling: check the (clear-text!) username and password
    /// against the central database.
    fn handle_login(&self, message: &Message) -> Message {
        if !self.is_connected(&message.sender) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "connect before login");
        }
        let (Some(username), Some(password)) = (
            message.element_str("username"),
            message.element_str("password"),
        ) else {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "missing credentials");
        };
        if !self.database.verify(&username, &password) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "authentication failed");
        }
        let session = self.establish_session(message.sender, &username);
        let groups = session
            .groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");
        Message::new(MessageKind::LoginResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("username", &username)
            .with_str("groups", &groups)
    }

    /// `publishAdvertisement` handling: index and distribute to group members.
    fn handle_publish(&self, message: &Message) -> Message {
        let Some(session) = self.session(&message.sender) else {
            return self.reject(message, "login required");
        };
        let (Some(group), Some(doc_type), Some(xml)) = (
            message.element_str("group"),
            message.element_str("doc-type"),
            message.element_str("xml"),
        ) else {
            return self.reject(message, "missing publish fields");
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return self.reject(message, "not a member of the target group");
        }
        let pushed = self.index_and_distribute(message.sender, &group, &doc_type, &xml);
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("pushed-to", &pushed.to_string())
    }

    /// `lookup` handling: return matching advertisements from the index.
    fn handle_lookup(&self, message: &Message) -> Message {
        let Some(session) = self.session(&message.sender) else {
            return self.reject(message, "login required");
        };
        let (Some(group), Some(doc_type)) = (
            message.element_str("group"),
            message.element_str("doc-type"),
        ) else {
            return self.reject(message, "missing lookup fields");
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return self.reject(message, "not a member of the target group");
        }
        let owner = message
            .element_str("owner")
            .and_then(|urn| PeerId::from_urn(&urn));
        let results = self.lookup(&group, &doc_type, owner);
        let mut response = Message::new(MessageKind::LookupResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("count", &results.len().to_string());
        for (i, xml) in results.into_iter().enumerate() {
            response.push_element(format!("adv-{i}"), xml.into_bytes());
        }
        response
    }
}

/// Handle of a running broker thread.
pub struct BrokerHandle {
    broker: Arc<Broker>,
    shutdown: crossbeam::channel::Sender<()>,
    thread: Option<JoinHandle<()>>,
}

impl BrokerHandle {
    /// The broker this handle controls.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The broker's peer identifier.
    pub fn id(&self) -> PeerId {
        self.broker.id()
    }

    /// Stops the broker's event loop and waits for the thread to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.shutdown.send(());
        // Unregistering closes the channel, which also wakes the loop.
        self.broker.network.unregister(&self.broker.id);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Default timeout used by client primitives waiting for a broker response.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkModel;
    use jxta_crypto::drbg::HmacDrbg;

    fn setup() -> (Arc<SimNetwork>, Arc<UserDatabase>, Arc<Broker>, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed_u64(0xB20C);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math"), GroupId::new("chem")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let broker = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::default(),
            Arc::clone(&network),
            Arc::clone(&database),
        );
        (network, database, broker, rng)
    }

    fn connect_and_login(broker: &Broker, peer: PeerId, username: &str, password: &str) -> Message {
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        let resp = broker.handle_message(&connect).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        let login = Message::new(MessageKind::LoginRequest, peer, 2)
            .with_str("username", username)
            .with_str("password", password);
        broker.handle_message(&login).unwrap()
    }

    #[test]
    fn connect_then_login_success() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "pw-a");
        assert_eq!(resp.kind, MessageKind::LoginResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert!(resp.element_str("groups").unwrap().contains("math"));
        assert_eq!(broker.session_count(), 1);
        assert!(broker.groups().is_member(&GroupId::new("math"), &peer));
        assert!(broker.groups().is_member(&GroupId::new("chem"), &peer));
    }

    #[test]
    fn login_requires_prior_connect() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let login = Message::new(MessageKind::LoginRequest, peer, 1)
            .with_str("username", "alice")
            .with_str("password", "pw-a");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("connect"));
    }

    #[test]
    fn login_with_wrong_password_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "wrong");
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert_eq!(broker.session_count(), 0);
    }

    #[test]
    fn login_with_missing_fields_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        broker.handle_message(&Message::new(MessageKind::ConnectRequest, peer, 1));
        let login = Message::new(MessageKind::LoginRequest, peer, 2).with_str("username", "alice");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn publish_requires_login_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);

        // Without login.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 3)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Logged in but publishing into a group the user is not a member of.
        connect_and_login(&broker, peer, "bob", "pw-b");
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 4)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Correct group succeeds.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 5)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn publish_pushes_to_other_group_members() {
        let (net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        // Bob needs a registered endpoint to receive the push.
        let bob_rx = net.register(bob);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        let publish = Message::new(MessageKind::PublishAdvertisement, alice, 9)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<adv>alice</adv>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element_str("pushed-to").unwrap(), "1");

        let pushed = bob_rx.try_recv().unwrap();
        let pushed_msg = Message::from_bytes(&pushed.payload).unwrap();
        assert_eq!(pushed_msg.kind, MessageKind::AdvertisementPush);
        assert_eq!(pushed_msg.element_str("xml").unwrap(), "<adv>alice</adv>");
    }

    #[test]
    fn lookup_filters_by_type_owner_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        broker.index_and_distribute(bob, &GroupId::new("math"), "jxta:PipeAdvertisement", "<b/>");
        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:FileAdvertisement", "<f/>");
        broker.index_and_distribute(alice, &GroupId::new("chem"), "jxta:PipeAdvertisement", "<c/>");

        // All pipe advertisements in math.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 10)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "2");

        // Restricted to one owner.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 11)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &alice.to_urn());
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "1");
        assert_eq!(resp.element_str("adv-0").unwrap(), "<a/>");

        // Bob is not in chem, so lookups there are rejected.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 12)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn lookup_unknown_group_returns_empty() {
        let (_net, _db, broker, _rng) = setup();
        assert!(broker.lookup(&GroupId::new("ghost"), "jxta:PipeAdvertisement", None).is_empty());
    }

    #[test]
    fn secure_kinds_rejected_without_extension() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("not enabled"));
    }

    struct EchoExtension;
    impl BrokerExtension for EchoExtension {
        fn handle(&self, broker: &Broker, message: &Message) -> Option<Message> {
            Some(
                Message::new(MessageKind::SecureConnectResponse, broker.id(), message.request_id)
                    .with_str("status", "ok"),
            )
        }
    }

    #[test]
    fn extension_receives_secure_kinds() {
        let (_net, _db, broker, mut rng) = setup();
        broker.set_extension(Arc::new(EchoExtension));
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::SecureConnectResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn unsupported_kind_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::PeerText, peer, 1).with_str("text", "hi broker");
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::Ack);
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn drop_session_removes_memberships() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        connect_and_login(&broker, peer, "alice", "pw-a");
        assert!(broker.session(&peer).is_some());
        broker.drop_session(&peer);
        assert!(broker.session(&peer).is_none());
        assert!(!broker.is_connected(&peer));
        assert!(!broker.groups().is_member(&GroupId::new("math"), &peer));
    }

    #[test]
    fn spawned_broker_answers_over_the_network() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);

        let connect = Message::new(MessageKind::ConnectRequest, peer, 77);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let reply_msg = Message::from_bytes(&reply.payload).unwrap();
        assert_eq!(reply_msg.kind, MessageKind::ConnectResponse);
        assert_eq!(reply_msg.request_id, 77);
        handle.shutdown();
    }

    #[test]
    fn undecodable_traffic_is_ignored_by_running_broker() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);
        net.send(peer, handle.id(), b"garbage".to_vec()).unwrap();
        // A valid message afterwards still gets served.
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(Message::from_bytes(&reply.payload).unwrap().kind, MessageKind::ConnectResponse);
        handle.shutdown();
    }
}
