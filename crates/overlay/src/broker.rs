//! The Broker Module.
//!
//! Brokers are the special peers that control access to the JXTA-Overlay
//! network: they authenticate end users against the central database, keep a
//! global index of resources (advertisements) and propagate peer information
//! across group members, acting as beacons for newly arrived client peers
//! (paper, §2.1).
//!
//! A [`Broker`] owns its state; [`Broker::spawn`] starts the broker event
//! loop on its own thread so that client primitives interact with it purely
//! through the simulated network, exactly like a remote broker process.
//! Broker *functions* are "always executed as a result of messages sent via
//! Client Module primitives" (§2.2), which maps to the message handlers in
//! [`Broker::handle_message`].
//!
//! The plain broker understands only the insecure message kinds.  The secure
//! extension registers a [`BrokerExtension`] that handles the
//! `SecureConnect*`/`SecureLogin*` kinds; this keeps the Broker Module open
//! for extension without the security crate having to reimplement indexing
//! and group management.
//!
//! # Federation
//!
//! The paper's architecture has a *backbone* of brokers, not a single one.
//! A broker therefore also speaks two inter-broker message kinds:
//!
//! * [`MessageKind::BrokerSync`] — gossip that replicates the advertisement
//!   index, group membership and peer→broker routing to every peer broker.
//!   Sync messages carry a per-origin sequence number; stale or duplicate
//!   sequence numbers (replays) and messages from peers that are not part of
//!   the federation are rejected and counted.
//! * [`MessageKind::BrokerRelay`] — an opaque client payload crossing the
//!   backbone towards the broker that homes the destination peer.  Clients
//!   trigger it with [`MessageKind::RelayViaBroker`]; each hop of the relay
//!   is charged its own link cost (see [`SimNetwork::forward`]).
//!
//! [`crate::federation::BrokerNetwork`] wires brokers into a full mesh.

use crate::database::UserDatabase;
use crate::group::{GroupId, GroupRegistry};
use crate::id::PeerId;
use crate::message::{Message, MessageKind};
use crate::metrics::{FederationMetrics, FederationStats};
use crate::net::{NetMessage, SimNetwork};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a broker peer.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Human-readable broker name (the paper's brokers have well-known
    /// identifiers such as DNS names).
    pub name: String,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            name: "broker".to_string(),
        }
    }
}

/// Hook that lets the security extension handle additional message kinds.
pub trait BrokerExtension: Send + Sync {
    /// Handles `message` if it belongs to the extension.
    ///
    /// Returns `Some(response)` to send a reply back to the sender, or `None`
    /// if the message kind is not handled by this extension (the broker then
    /// replies with a generic rejection).
    fn handle(&self, broker: &Broker, message: &Message) -> Option<Message>;
}

/// An authenticated client session as seen by the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerSession {
    /// The authenticated end-user name.
    pub username: String,
    /// Groups the user belongs to.
    pub groups: Vec<GroupId>,
}

/// One indexed advertisement: the XML document plus its last-writer-wins
/// version.  The version is `(sequence number at the origin broker, origin
/// broker id)`: every broker keeps the entry with the greatest version, so
/// concurrent publishes of the same `(owner, doc type)` key at different
/// brokers converge to the same winner on every replica regardless of the
/// order the gossip arrives in.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexedAdvertisement {
    xml: String,
    version: (u64, PeerId),
}

/// Advertisement index for one group: (owner, doc type) → versioned XML.
type GroupAdvertisements = HashMap<(PeerId, String), IndexedAdvertisement>;

/// Version of a peer's replicated presence state: `(origin sequence, kind
/// rank, origin broker)`.  Joins rank above leaves at the same sequence so a
/// leave/re-join pair racing across the backbone resolves to the join on
/// every broker.  Like the advertisement versions, any total order makes the
/// replicas converge; the ranking only picks the intuitive winner.
type PresenceVersion = (u64, u8, PeerId);

/// Rank of a leave in a [`PresenceVersion`].
const PRESENCE_LEAVE: u8 = 0;
/// Rank of a join in a [`PresenceVersion`].
const PRESENCE_JOIN: u8 = 1;

/// The broker peer.
pub struct Broker {
    id: PeerId,
    config: BrokerConfig,
    network: Arc<SimNetwork>,
    database: Arc<UserDatabase>,
    groups: GroupRegistry,
    /// Global advertisement index: group → (owner, doc type) → XML.
    advertisements: RwLock<HashMap<GroupId, GroupAdvertisements>>,
    /// Connected (but not necessarily logged-in) peers.
    connected: RwLock<HashMap<PeerId, ()>>,
    /// Logged-in sessions.
    sessions: RwLock<HashMap<PeerId, BrokerSession>>,
    /// Live local sessions shadowed by a remote join this broker yielded to.
    /// The connection is still open here; if the displacing origin later
    /// gossips the peer's departure, the shadowed session is resurrected
    /// (the join/leave pair proves the displacing join was a stale echo).
    displaced: RwLock<HashMap<PeerId, BrokerSession>>,
    extension: RwLock<Option<Arc<dyn BrokerExtension>>>,
    /// The other brokers of the federation backbone.
    peer_brokers: RwLock<Vec<PeerId>>,
    /// Which broker each remote peer is homed at (replicated via gossip).
    peer_homes: RwLock<HashMap<PeerId, PeerId>>,
    /// Last-writer-wins version of each peer's presence (join/leave) state.
    peer_versions: RwLock<HashMap<PeerId, PresenceVersion>>,
    /// Sequence number stamped on outgoing inter-broker messages.
    sync_seq: AtomicU64,
    /// Highest sequence number seen per origin broker (replay detection).
    seen_seq: RwLock<HashMap<PeerId, u64>>,
    /// Federation activity counters.
    federation: FederationMetrics,
}

impl Broker {
    /// Creates a broker with the given identifier.
    pub fn new(
        id: PeerId,
        config: BrokerConfig,
        network: Arc<SimNetwork>,
        database: Arc<UserDatabase>,
    ) -> Arc<Self> {
        Arc::new(Broker {
            id,
            config,
            network,
            database,
            groups: GroupRegistry::new(),
            advertisements: RwLock::new(HashMap::new()),
            connected: RwLock::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            displaced: RwLock::new(HashMap::new()),
            extension: RwLock::new(None),
            peer_brokers: RwLock::new(Vec::new()),
            peer_homes: RwLock::new(HashMap::new()),
            peer_versions: RwLock::new(HashMap::new()),
            sync_seq: AtomicU64::new(0),
            seen_seq: RwLock::new(HashMap::new()),
            federation: FederationMetrics::new(),
        })
    }

    /// The broker's peer identifier (its "well-known" address).
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The broker's configuration.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// The network this broker is attached to.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The central user database (brokers are the only entities allowed to
    /// touch it).
    pub fn database(&self) -> &Arc<UserDatabase> {
        &self.database
    }

    /// The broker's group registry.
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Installs the security extension.
    pub fn set_extension(&self, extension: Arc<dyn BrokerExtension>) {
        *self.extension.write() = Some(extension);
    }

    // ------------------------------------------------------------------
    // Federation membership and routing
    // ------------------------------------------------------------------

    /// Registers another broker as a peer of the federation backbone.
    /// Gossip is sent to — and accepted from — peer brokers only.
    pub fn add_peer_broker(&self, broker: PeerId) {
        if broker == self.id {
            return;
        }
        let mut peers = self.peer_brokers.write();
        if !peers.contains(&broker) {
            peers.push(broker);
        }
    }

    /// The other brokers of the federation this broker gossips with.
    pub fn peer_brokers(&self) -> Vec<PeerId> {
        self.peer_brokers.read().clone()
    }

    /// Returns `true` if `peer` is a known peer broker of the federation.
    pub fn is_peer_broker(&self, peer: &PeerId) -> bool {
        self.peer_brokers.read().contains(peer)
    }

    /// Federation activity counters (gossip, relays, rejected traffic).
    pub fn federation_stats(&self) -> FederationStats {
        self.federation.snapshot()
    }

    /// The broker a peer is homed at: this broker for local sessions, the
    /// gossip-replicated home broker for peers joined elsewhere.
    pub fn home_of(&self, peer: &PeerId) -> Option<PeerId> {
        if self.sessions.read().contains_key(peer) {
            return Some(self.id);
        }
        self.peer_homes.read().get(peer).copied()
    }

    /// Deterministic snapshot of the advertisement index, used by the
    /// federation's replication-convergence checks.
    pub fn advertisement_snapshot(&self) -> Vec<(GroupId, PeerId, String, String)> {
        let advertisements = self.advertisements.read();
        let mut out = Vec::new();
        for (group, index) in advertisements.iter() {
            for ((owner, doc_type), adv) in index.iter() {
                out.push((group.clone(), *owner, doc_type.clone(), adv.xml.clone()));
            }
        }
        out.sort();
        out
    }

    /// Deterministic snapshot of the peer→home-broker routing table (local
    /// sessions map to this broker itself).
    pub fn routing_snapshot(&self) -> Vec<(PeerId, PeerId)> {
        let mut out: Vec<(PeerId, PeerId)> = self
            .sessions
            .read()
            .keys()
            .map(|peer| (*peer, self.id))
            .collect();
        out.extend(self.peer_homes.read().iter().map(|(p, h)| (*p, *h)));
        out.sort();
        out
    }

    /// Returns `true` if `peer` completed the connect step.
    pub fn is_connected(&self, peer: &PeerId) -> bool {
        self.connected.read().contains_key(peer)
    }

    /// Returns the session of a logged-in peer.
    pub fn session(&self, peer: &PeerId) -> Option<BrokerSession> {
        self.sessions.read().get(peer).cloned()
    }

    /// Number of logged-in peers.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Marks a peer as connected (used by both the plain handler and the
    /// secure extension).
    pub fn mark_connected(&self, peer: PeerId) {
        self.connected.write().insert(peer, ());
    }

    /// Records a successful login and joins the user's groups.  Returns the
    /// created session and replicates it to the federation (the peer is now
    /// homed here).
    pub fn establish_session(&self, peer: PeerId, username: &str) -> BrokerSession {
        let groups = self.database.groups_of(username);
        for g in &groups {
            self.groups.join(g.clone(), peer);
        }
        let session = BrokerSession {
            username: username.to_string(),
            groups: groups.clone(),
        };
        self.sessions.write().insert(peer, session.clone());
        // If the peer previously logged in at another broker, this broker is
        // its home now; a fresh login also supersedes any shadowed session.
        self.peer_homes.write().remove(&peer);
        self.displaced.write().remove(&peer);
        let seq = self.version_local_presence(peer, PRESENCE_JOIN);
        self.gossip_join(seq, peer, &groups);
        session
    }

    /// Removes a peer's session and group memberships (logout / departure)
    /// and replicates the departure to the federation.
    pub fn drop_session(&self, peer: &PeerId) {
        let had_session = self.sessions.write().remove(peer).is_some();
        self.connected.write().remove(peer);
        self.displaced.write().remove(peer);
        self.groups.leave_all(peer);
        if had_session {
            let peer = *peer;
            let seq = self.version_local_presence(peer, PRESENCE_LEAVE);
            self.gossip_sync_with_seq(seq, |m| {
                m.with_str("op", "leave").with_str("peer", &peer.to_urn())
            });
        }
    }

    /// Records a local join/leave in the presence register and returns the
    /// sequence number it was versioned (and must be gossiped) under.  The
    /// sequence is floored above the stored version so the local write — the
    /// authoritative one, the client is talking to *this* broker — wins.
    fn version_local_presence(&self, peer: PeerId, rank: u8) -> u64 {
        let floor = self
            .peer_versions
            .read()
            .get(&peer)
            .map(|version| version.0 + 1)
            .unwrap_or(1);
        self.sync_seq.fetch_max(floor - 1, Ordering::Relaxed);
        let seq = self.next_sync_seq();
        self.peer_versions.write().insert(peer, (seq, rank, self.id));
        seq
    }

    /// Applies `version` to the presence register if it is newer than the
    /// stored one.  Returns `false` when the incoming write is stale.
    fn try_version_presence(&self, peer: PeerId, version: PresenceVersion) -> bool {
        let mut versions = self.peer_versions.write();
        match versions.entry(peer) {
            std::collections::hash_map::Entry::Occupied(mut stored) => {
                if version <= *stored.get() {
                    return false;
                }
                stored.insert(version);
                true
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(version);
                true
            }
        }
    }

    /// Stores an advertisement in the global index, pushes it to the other
    /// *locally homed* members of the group and replicates it to the peer
    /// brokers (each of which pushes to its own local members, so every
    /// member receives exactly one push).  Returns the number of local peers
    /// it was pushed to.
    pub fn index_and_distribute(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
    ) -> usize {
        // The gossip's transport sequence number doubles as the entry's
        // last-writer-wins version, so the local write and its replicas
        // carry the identical version on every broker.
        let seq = self.next_sync_seq();
        let pushed = self.apply_publish(from, group, doc_type, xml, (seq, self.id));
        self.gossip_sync_with_seq(seq, |m| {
            m.with_str("op", "publish")
                .with_str("group", group.as_str())
                .with_str("doc-type", doc_type)
                .with_str("owner", &from.to_urn())
                .with_str("xml", xml)
        });
        pushed
    }

    /// Indexes an advertisement and pushes it to locally homed group members
    /// without gossiping (shared by the local publish path and the gossip
    /// application path).  The entry is only replaced when `version` is
    /// greater than the stored one (last-writer-wins convergence).
    fn apply_publish(
        &self,
        from: PeerId,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
        version: (u64, PeerId),
    ) -> usize {
        {
            let mut advertisements = self.advertisements.write();
            let entry = advertisements
                .entry(group.clone())
                .or_default()
                .entry((from, doc_type.to_string()));
            use std::collections::hash_map::Entry;
            match entry {
                Entry::Occupied(mut stored) => {
                    if version <= stored.get().version {
                        // A concurrent write with a greater version already
                        // won; dropping this one keeps all replicas equal.
                        return 0;
                    }
                    stored.insert(IndexedAdvertisement {
                        xml: xml.to_string(),
                        version,
                    });
                }
                Entry::Vacant(slot) => {
                    slot.insert(IndexedAdvertisement {
                        xml: xml.to_string(),
                        version,
                    });
                }
            }
        }

        let local: Vec<PeerId> = {
            let sessions = self.sessions.read();
            self.groups
                .members(group)
                .into_iter()
                .filter(|member| *member != from && sessions.contains_key(member))
                .collect()
        };
        let mut pushed = 0;
        for member in local {
            let push = Message::new(MessageKind::AdvertisementPush, self.id, 0)
                .with_str("group", group.as_str())
                .with_str("doc-type", doc_type)
                .with_str("xml", xml);
            if self.network.send(self.id, member, push.to_bytes()).is_ok() {
                pushed += 1;
            }
        }
        pushed
    }

    // ------------------------------------------------------------------
    // Federation gossip
    // ------------------------------------------------------------------

    /// Allocates the next outgoing inter-broker sequence number.
    fn next_sync_seq(&self) -> u64 {
        self.sync_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Sends one gossip event (built by `build`) to every peer broker under
    /// a pre-allocated per-origin sequence number — the same number that
    /// versions the replicated write, so the local write and its replicas
    /// carry identical versions.
    fn gossip_sync_with_seq(&self, seq: u64, build: impl Fn(Message) -> Message) {
        let peers = self.peer_brokers.read().clone();
        if peers.is_empty() {
            return;
        }
        // One build + one serialisation, shared by every peer broker.
        let bytes = build(Message::new(MessageKind::BrokerSync, self.id, 0))
            .with_str("seq", &seq.to_string())
            .to_bytes();
        for peer in peers {
            if self.network.send(self.id, peer, bytes.clone()).is_ok() {
                self.federation.count_sync_sent();
            }
        }
    }

    /// Admission control for inter-broker traffic: the origin must be a
    /// known peer broker, it must match the transport-level sender (when the
    /// message arrived over the network rather than being handed in
    /// directly), and the sequence number must be fresh.  Rejections are
    /// counted (they are what the cross-broker attack tests assert on).
    ///
    /// This models the connection-oriented trust of a real backbone (a
    /// broker knows which TLS/TCP link a message arrived on); an adversary
    /// spoofing *both* identities is only stopped by the end-to-end
    /// cryptography of the secure extension, never by the overlay.
    fn accept_from_peer_broker(
        &self,
        origin: PeerId,
        transport_from: Option<PeerId>,
        seq: Option<String>,
    ) -> Option<u64> {
        if transport_from.is_some_and(|from| from != origin) || !self.is_peer_broker(&origin) {
            self.federation.count_rejected_unknown_origin();
            return None;
        }
        let Some(seq) = seq.and_then(|s| s.parse::<u64>().ok()) else {
            self.federation.count_rejected_replayed();
            return None;
        };
        // Lamport merge: pull the local sequence counter past every observed
        // remote sequence number, so subsequent *local* writes always
        // version-dominate the remote writes this broker has already seen —
        // without it, a fresh local publish on a quiet broker would lose the
        // LWW comparison against a replica from a busier broker.
        self.sync_seq.fetch_max(seq, Ordering::Relaxed);
        let mut seen = self.seen_seq.write();
        let last = seen.entry(origin).or_insert(0);
        if seq <= *last {
            self.federation.count_rejected_replayed();
            return None;
        }
        *last = seq;
        Some(seq)
    }

    /// Applies one incoming gossip message to local state.
    fn handle_sync(&self, message: &Message, transport_from: Option<PeerId>) {
        let Some(seq) =
            self.accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
        else {
            return;
        };
        let origin = message.sender;
        match message.element_str("op").as_deref() {
            Some("publish") => {
                let (Some(group), Some(doc_type), Some(owner), Some(xml)) = (
                    message.element_str("group"),
                    message.element_str("doc-type"),
                    message.element_str("owner"),
                    message.element_str("xml"),
                ) else {
                    return;
                };
                let Some(owner) = PeerId::from_urn(&owner) else {
                    return;
                };
                self.apply_publish(owner, &GroupId::new(group), &doc_type, &xml, (seq, origin));
                self.federation.count_sync_applied();
            }
            Some("join") => {
                let Some(peer) = message
                    .element_str("peer")
                    .and_then(|urn| PeerId::from_urn(&urn))
                else {
                    return;
                };
                if !self.try_version_presence(peer, (seq, PRESENCE_JOIN, origin)) {
                    return; // a newer local or replicated write already won
                }
                if let Some(session) = self.session(&peer) {
                    // The peer is demonstrably logged in *here* right now —
                    // local ground truth the remote join cannot know about.
                    // The lower broker id re-asserts (so a stale join
                    // arriving late cannot ghost a live client); the higher
                    // one yields but *shadows* the still-open session
                    // instead of forgetting it.  Exactly one side backs
                    // down, so the exchange always terminates.
                    if self.id < origin {
                        self.reassert_session(peer, &session);
                        return;
                    }
                    self.displaced.write().insert(peer, session);
                }
                // The peer is homed at `origin` now; any local session for it
                // is stale (the peer re-homed to another broker).
                self.sessions.write().remove(&peer);
                self.connected.write().remove(&peer);
                self.groups.leave_all(&peer);
                self.peer_homes.write().insert(peer, origin);
                for group in message
                    .element_str("groups")
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                {
                    self.groups.join(GroupId::new(group), peer);
                }
                self.federation.count_sync_applied();
            }
            Some("leave") => {
                let Some(peer) = message
                    .element_str("peer")
                    .and_then(|urn| PeerId::from_urn(&urn))
                else {
                    return;
                };
                if !self.try_version_presence(peer, (seq, PRESENCE_LEAVE, origin)) {
                    return; // the peer meanwhile re-homed; this leave is stale
                }
                if let Some(session) = self.session(&peer) {
                    // A leave echoing an older home must not log out a peer
                    // that is live here; re-assert unconditionally (the
                    // leaver holds no session, so it never counter-asserts).
                    self.reassert_session(peer, &session);
                    return;
                }
                if let Some(session) = self.displaced.write().remove(&peer) {
                    // The peer's global state just became "gone", yet its
                    // connection here is still open: the join we yielded to
                    // was a stale echo of a completed login/logout episode.
                    // Resurrect the shadowed session as the peer's home.
                    self.sessions.write().insert(peer, session.clone());
                    self.reassert_session(peer, &session);
                    return;
                }
                self.connected.write().remove(&peer);
                self.groups.leave_all(&peer);
                self.peer_homes.write().remove(&peer);
                self.federation.count_sync_applied();
            }
            _ => {}
        }
    }

    /// Re-announces a live local session whose presence register was just
    /// overwritten by stale remote gossip: this broker *is* the peer's home
    /// (the connection is local ground truth), so it restores the peer's
    /// membership, re-versions the join above the remote write and gossips
    /// it back out.
    fn reassert_session(&self, peer: PeerId, session: &BrokerSession) {
        self.peer_homes.write().remove(&peer);
        for group in &session.groups {
            self.groups.join(group.clone(), peer);
        }
        let seq = self.version_local_presence(peer, PRESENCE_JOIN);
        self.gossip_join(seq, peer, &session.groups);
    }

    /// Gossips a join event for `peer` under `seq`.
    fn gossip_join(&self, seq: u64, peer: PeerId, groups: &[GroupId]) {
        let joined = groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.gossip_sync_with_seq(seq, |m| {
            m.with_str("op", "join")
                .with_str("peer", &peer.to_urn())
                .with_str("groups", &joined)
        });
    }

    // ------------------------------------------------------------------
    // Relaying
    // ------------------------------------------------------------------

    /// Handles a client's `RelayViaBroker` request: deliver locally if the
    /// destination is homed here, otherwise forward it across the backbone
    /// to the destination's home broker.  `carried_wire` is the wire time of
    /// the client→broker hop, so the final delivery charges every hop.
    fn handle_relay_request(&self, message: &Message, carried_wire: Duration) -> Option<Message> {
        if self.session(&message.sender).is_none() {
            return Some(self.reject(message, "login required"));
        }
        let (Some(to_urn), Some(payload)) = (message.element_str("to"), message.element("payload"))
        else {
            return Some(self.reject(message, "missing relay fields"));
        };
        let Some(dest) = PeerId::from_urn(&to_urn) else {
            return Some(self.reject(message, "malformed destination identifier"));
        };

        if self.sessions.read().contains_key(&dest) {
            return match self.network.forward(self.id, dest, payload.to_vec(), carried_wire) {
                Ok(_) => {
                    self.federation.count_relay_delivered();
                    Some(
                        Message::new(MessageKind::Ack, self.id, message.request_id)
                            .with_str("status", "ok")
                            .with_str("route", "local"),
                    )
                }
                Err(_) => {
                    self.federation.count_relay_failed();
                    Some(self.reject(message, "destination unreachable"))
                }
            };
        }

        let Some(home) = self.peer_homes.read().get(&dest).copied() else {
            self.federation.count_relay_failed();
            return Some(self.reject(message, "unknown destination peer"));
        };
        let relay = Message::new(MessageKind::BrokerRelay, self.id, message.request_id)
            .with_str("seq", &self.next_sync_seq().to_string())
            .with_str("to", &to_urn)
            .with_element("payload", payload.to_vec());
        match self
            .network
            .forward(self.id, home, relay.to_bytes(), carried_wire)
        {
            Ok(_) => {
                self.federation.count_relay_forwarded();
                Some(
                    Message::new(MessageKind::Ack, self.id, message.request_id)
                        .with_str("status", "ok")
                        .with_str("route", "federation"),
                )
            }
            Err(_) => {
                self.federation.count_relay_failed();
                Some(self.reject(message, "home broker unreachable"))
            }
        }
    }

    /// Handles a `BrokerRelay` arriving over the backbone: after admission
    /// control, the opaque payload is delivered to the locally homed
    /// destination peer with the accumulated wire time carried forward.
    fn handle_broker_relay(
        &self,
        message: &Message,
        transport_from: Option<PeerId>,
        carried_wire: Duration,
    ) {
        if self
            .accept_from_peer_broker(message.sender, transport_from, message.element_str("seq"))
            .is_none()
        {
            return;
        }
        let (Some(to_urn), Some(payload)) = (message.element_str("to"), message.element("payload"))
        else {
            self.federation.count_relay_failed();
            return;
        };
        let Some(dest) = PeerId::from_urn(&to_urn) else {
            self.federation.count_relay_failed();
            return;
        };
        if !self.sessions.read().contains_key(&dest) {
            self.federation.count_relay_failed();
            return;
        }
        match self.network.forward(self.id, dest, payload.to_vec(), carried_wire) {
            Ok(_) => self.federation.count_relay_delivered(),
            Err(_) => self.federation.count_relay_failed(),
        }
    }

    /// Looks up advertisements of a given type within a group, optionally
    /// restricted to one owner.
    pub fn lookup(
        &self,
        group: &GroupId,
        doc_type: &str,
        owner: Option<PeerId>,
    ) -> Vec<String> {
        let advertisements = self.advertisements.read();
        let Some(index) = advertisements.get(group) else {
            return Vec::new();
        };
        let mut results: Vec<(&(PeerId, String), &IndexedAdvertisement)> = index
            .iter()
            .filter(|((adv_owner, adv_type), _)| {
                adv_type == doc_type && owner.is_none_or(|o| *adv_owner == o)
            })
            .collect();
        // Deterministic order keeps experiments and tests reproducible.
        results.sort_by_key(|((owner, _), _)| *owner);
        results.into_iter().map(|(_, adv)| adv.xml.clone()).collect()
    }

    /// Starts the broker's event loop on a dedicated thread.
    pub fn spawn(self: &Arc<Self>) -> BrokerHandle {
        let receiver = self.network.register(self.id);
        let broker = Arc::clone(self);
        let (shutdown_tx, shutdown_rx) = crossbeam::channel::bounded::<()>(1);
        let thread = std::thread::Builder::new()
            .name(format!("broker-{}", self.config.name))
            .spawn(move || loop {
                crossbeam::channel::select! {
                    recv(receiver) -> msg => match msg {
                        Ok(net_message) => broker.process_net(net_message),
                        Err(_) => break,
                    },
                    recv(shutdown_rx) -> _ => break,
                }
            })
            .expect("failed to spawn broker thread");
        BrokerHandle {
            broker: Arc::clone(self),
            shutdown: shutdown_tx,
            thread: Some(thread),
        }
    }

    /// Processes one raw network message (parse, dispatch, reply).
    ///
    /// Public so the thread-free federation mode (deterministic pumping used
    /// by the replication proptests) can drive a broker without spawning its
    /// event-loop thread.  Relay kinds are dispatched here rather than in
    /// [`Broker::handle_message`] because they need the delivery's
    /// accumulated wire time for per-hop accounting.
    pub fn process_net(&self, net_message: NetMessage) {
        let message = match Message::from_bytes(&net_message.payload) {
            Ok(m) => m,
            Err(_) => return, // undecodable traffic is dropped silently
        };
        let response = match message.kind {
            MessageKind::RelayViaBroker => {
                self.handle_relay_request(&message, net_message.wire_time)
            }
            MessageKind::BrokerRelay => {
                self.handle_broker_relay(&message, Some(net_message.from), net_message.wire_time);
                None
            }
            MessageKind::BrokerSync => {
                self.handle_sync(&message, Some(net_message.from));
                None
            }
            _ => self.handle_message(&message),
        };
        if let Some(response) = response {
            let _ = self
                .network
                .send(self.id, net_message.from, response.to_bytes());
        }
    }

    /// Dispatches a decoded message to the appropriate broker function.
    ///
    /// Public so tests (and the in-line, thread-free mode used by some
    /// benchmarks) can drive a broker without spawning its thread.
    pub fn handle_message(&self, message: &Message) -> Option<Message> {
        match message.kind {
            MessageKind::ConnectRequest => Some(self.handle_connect(message)),
            MessageKind::LoginRequest => Some(self.handle_login(message)),
            MessageKind::PublishAdvertisement => Some(self.handle_publish(message)),
            MessageKind::LookupRequest => Some(self.handle_lookup(message)),
            MessageKind::BrokerSync => {
                self.handle_sync(message, None);
                None
            }
            MessageKind::RelayViaBroker => self.handle_relay_request(message, Duration::ZERO),
            MessageKind::BrokerRelay => {
                self.handle_broker_relay(message, None, Duration::ZERO);
                None
            }
            MessageKind::SecureConnectChallenge
            | MessageKind::SecureLoginRequest => {
                let extension = self.extension.read().clone();
                match extension {
                    Some(ext) => ext.handle(self, message).or_else(|| {
                        Some(self.reject(message, "secure primitive not handled by extension"))
                    }),
                    None => Some(self.reject(message, "secure primitives not enabled on this broker")),
                }
            }
            // Anything else is not a broker function.
            _ => Some(self.reject(message, "unsupported message kind")),
        }
    }

    fn reject(&self, message: &Message, reason: &str) -> Message {
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "error")
            .with_str("reason", reason)
    }

    /// `connect` handling: accept the connection and identify ourselves.
    fn handle_connect(&self, message: &Message) -> Message {
        self.mark_connected(message.sender);
        Message::new(MessageKind::ConnectResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("broker-name", &self.config.name)
    }

    /// `login` handling: check the (clear-text!) username and password
    /// against the central database.
    fn handle_login(&self, message: &Message) -> Message {
        if !self.is_connected(&message.sender) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "connect before login");
        }
        let (Some(username), Some(password)) = (
            message.element_str("username"),
            message.element_str("password"),
        ) else {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "missing credentials");
        };
        if !self.database.verify(&username, &password) {
            return Message::new(MessageKind::LoginResponse, self.id, message.request_id)
                .with_str("status", "error")
                .with_str("reason", "authentication failed");
        }
        let session = self.establish_session(message.sender, &username);
        let groups = session
            .groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");
        Message::new(MessageKind::LoginResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("username", &username)
            .with_str("groups", &groups)
    }

    /// `publishAdvertisement` handling: index and distribute to group members.
    fn handle_publish(&self, message: &Message) -> Message {
        let Some(session) = self.session(&message.sender) else {
            return self.reject(message, "login required");
        };
        let (Some(group), Some(doc_type), Some(xml)) = (
            message.element_str("group"),
            message.element_str("doc-type"),
            message.element_str("xml"),
        ) else {
            return self.reject(message, "missing publish fields");
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return self.reject(message, "not a member of the target group");
        }
        let pushed = self.index_and_distribute(message.sender, &group, &doc_type, &xml);
        Message::new(MessageKind::Ack, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("pushed-to", &pushed.to_string())
    }

    /// `lookup` handling: return matching advertisements from the index.
    fn handle_lookup(&self, message: &Message) -> Message {
        let Some(session) = self.session(&message.sender) else {
            return self.reject(message, "login required");
        };
        let (Some(group), Some(doc_type)) = (
            message.element_str("group"),
            message.element_str("doc-type"),
        ) else {
            return self.reject(message, "missing lookup fields");
        };
        let group = GroupId::new(group);
        if !session.groups.contains(&group) {
            return self.reject(message, "not a member of the target group");
        }
        let owner = message
            .element_str("owner")
            .and_then(|urn| PeerId::from_urn(&urn));
        let results = self.lookup(&group, &doc_type, owner);
        let mut response = Message::new(MessageKind::LookupResponse, self.id, message.request_id)
            .with_str("status", "ok")
            .with_str("count", &results.len().to_string());
        for (i, xml) in results.into_iter().enumerate() {
            response.push_element(format!("adv-{i}"), xml.into_bytes());
        }
        response
    }
}

/// Handle of a running broker thread.
pub struct BrokerHandle {
    broker: Arc<Broker>,
    shutdown: crossbeam::channel::Sender<()>,
    thread: Option<JoinHandle<()>>,
}

impl BrokerHandle {
    /// The broker this handle controls.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The broker's peer identifier.
    pub fn id(&self) -> PeerId {
        self.broker.id()
    }

    /// Stops the broker's event loop and waits for the thread to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.shutdown.send(());
        // Unregistering closes the channel, which also wakes the loop.
        self.broker.network.unregister(&self.broker.id);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Default timeout used by client primitives waiting for a broker response.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkModel;
    use jxta_crypto::drbg::HmacDrbg;

    fn setup() -> (Arc<SimNetwork>, Arc<UserDatabase>, Arc<Broker>, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed_u64(0xB20C);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math"), GroupId::new("chem")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let broker = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::default(),
            Arc::clone(&network),
            Arc::clone(&database),
        );
        (network, database, broker, rng)
    }

    fn connect_and_login(broker: &Broker, peer: PeerId, username: &str, password: &str) -> Message {
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        let resp = broker.handle_message(&connect).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        let login = Message::new(MessageKind::LoginRequest, peer, 2)
            .with_str("username", username)
            .with_str("password", password);
        broker.handle_message(&login).unwrap()
    }

    #[test]
    fn connect_then_login_success() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "pw-a");
        assert_eq!(resp.kind, MessageKind::LoginResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert!(resp.element_str("groups").unwrap().contains("math"));
        assert_eq!(broker.session_count(), 1);
        assert!(broker.groups().is_member(&GroupId::new("math"), &peer));
        assert!(broker.groups().is_member(&GroupId::new("chem"), &peer));
    }

    #[test]
    fn login_requires_prior_connect() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let login = Message::new(MessageKind::LoginRequest, peer, 1)
            .with_str("username", "alice")
            .with_str("password", "pw-a");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("connect"));
    }

    #[test]
    fn login_with_wrong_password_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let resp = connect_and_login(&broker, peer, "alice", "wrong");
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert_eq!(broker.session_count(), 0);
    }

    #[test]
    fn login_with_missing_fields_fails() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        broker.handle_message(&Message::new(MessageKind::ConnectRequest, peer, 1));
        let login = Message::new(MessageKind::LoginRequest, peer, 2).with_str("username", "alice");
        let resp = broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn publish_requires_login_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);

        // Without login.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 3)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Logged in but publishing into a group the user is not a member of.
        connect_and_login(&broker, peer, "bob", "pw-b");
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 4)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");

        // Correct group succeeds.
        let publish = Message::new(MessageKind::PublishAdvertisement, peer, 5)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<x/>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn publish_pushes_to_other_group_members() {
        let (net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        // Bob needs a registered endpoint to receive the push.
        let bob_rx = net.register(bob);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        let publish = Message::new(MessageKind::PublishAdvertisement, alice, 9)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("xml", "<adv>alice</adv>");
        let resp = broker.handle_message(&publish).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element_str("pushed-to").unwrap(), "1");

        let pushed = bob_rx.try_recv().unwrap();
        let pushed_msg = Message::from_bytes(&pushed.payload).unwrap();
        assert_eq!(pushed_msg.kind, MessageKind::AdvertisementPush);
        assert_eq!(pushed_msg.element_str("xml").unwrap(), "<adv>alice</adv>");
    }

    #[test]
    fn lookup_filters_by_type_owner_and_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        broker.index_and_distribute(bob, &GroupId::new("math"), "jxta:PipeAdvertisement", "<b/>");
        broker.index_and_distribute(alice, &GroupId::new("math"), "jxta:FileAdvertisement", "<f/>");
        broker.index_and_distribute(alice, &GroupId::new("chem"), "jxta:PipeAdvertisement", "<c/>");

        // All pipe advertisements in math.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 10)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "2");

        // Restricted to one owner.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 11)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &alice.to_urn());
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("count").unwrap(), "1");
        assert_eq!(resp.element_str("adv-0").unwrap(), "<a/>");

        // Bob is not in chem, so lookups there are rejected.
        let lookup = Message::new(MessageKind::LookupRequest, bob, 12)
            .with_str("group", "chem")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let resp = broker.handle_message(&lookup).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn lookup_unknown_group_returns_empty() {
        let (_net, _db, broker, _rng) = setup();
        assert!(broker.lookup(&GroupId::new("ghost"), "jxta:PipeAdvertisement", None).is_empty());
    }

    #[test]
    fn secure_kinds_rejected_without_extension() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("not enabled"));
    }

    struct EchoExtension;
    impl BrokerExtension for EchoExtension {
        fn handle(&self, broker: &Broker, message: &Message) -> Option<Message> {
            Some(
                Message::new(MessageKind::SecureConnectResponse, broker.id(), message.request_id)
                    .with_str("status", "ok"),
            )
        }
    }

    #[test]
    fn extension_receives_secure_kinds() {
        let (_net, _db, broker, mut rng) = setup();
        broker.set_extension(Arc::new(EchoExtension));
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, peer, 1);
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::SecureConnectResponse);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
    }

    #[test]
    fn unsupported_kind_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        let msg = Message::new(MessageKind::PeerText, peer, 1).with_str("text", "hi broker");
        let resp = broker.handle_message(&msg).unwrap();
        assert_eq!(resp.kind, MessageKind::Ack);
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn drop_session_removes_memberships() {
        let (_net, _db, broker, mut rng) = setup();
        let peer = PeerId::random(&mut rng);
        connect_and_login(&broker, peer, "alice", "pw-a");
        assert!(broker.session(&peer).is_some());
        broker.drop_session(&peer);
        assert!(broker.session(&peer).is_none());
        assert!(!broker.is_connected(&peer));
        assert!(!broker.groups().is_member(&GroupId::new("math"), &peer));
    }

    #[test]
    fn peer_broker_registration_is_idempotent_and_excludes_self() {
        let (_net, _db, broker, mut rng) = setup();
        let other = PeerId::random(&mut rng);
        broker.add_peer_broker(other);
        broker.add_peer_broker(other);
        broker.add_peer_broker(broker.id());
        assert_eq!(broker.peer_brokers(), vec![other]);
        assert!(broker.is_peer_broker(&other));
        assert!(!broker.is_peer_broker(&broker.id()));
    }

    #[test]
    fn sync_from_unknown_origin_is_rejected() {
        let (_net, _db, broker, mut rng) = setup();
        let rogue = PeerId::random(&mut rng);
        let peer = PeerId::random(&mut rng);
        let sync = Message::new(MessageKind::BrokerSync, rogue, 0)
            .with_str("op", "join")
            .with_str("peer", &peer.to_urn())
            .with_str("groups", "math")
            .with_str("seq", "1");
        assert!(broker.handle_message(&sync).is_none(), "gossip is never acked");
        assert_eq!(broker.federation_stats().rejected_unknown_origin, 1);
        assert!(broker.home_of(&peer).is_none(), "nothing was applied");
    }

    #[test]
    fn replayed_sync_is_rejected_and_not_reapplied() {
        let (_net, _db, broker, mut rng) = setup();
        let origin = PeerId::random(&mut rng);
        let peer = PeerId::random(&mut rng);
        broker.add_peer_broker(origin);
        let sync = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "join")
            .with_str("peer", &peer.to_urn())
            .with_str("groups", "math,chem")
            .with_str("seq", "1");
        broker.handle_message(&sync);
        assert_eq!(broker.federation_stats().syncs_applied, 1);
        assert_eq!(broker.home_of(&peer), Some(origin));
        assert!(broker.groups().is_member(&GroupId::new("math"), &peer));

        // Replaying the captured gossip verbatim changes nothing.
        let routing_before = broker.routing_snapshot();
        broker.handle_message(&sync);
        assert_eq!(broker.federation_stats().rejected_replayed, 1);
        assert_eq!(broker.federation_stats().syncs_applied, 1);
        assert_eq!(broker.routing_snapshot(), routing_before);
    }

    #[test]
    fn replicated_publish_fills_index_and_leave_clears_membership() {
        let (_net, _db, broker, mut rng) = setup();
        let origin = PeerId::random(&mut rng);
        let owner = PeerId::random(&mut rng);
        broker.add_peer_broker(origin);
        let publish = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "publish")
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &owner.to_urn())
            .with_str("xml", "<remote/>")
            .with_str("seq", "1");
        broker.handle_message(&publish);
        assert_eq!(
            broker.lookup(&GroupId::new("math"), "jxta:PipeAdvertisement", Some(owner)),
            vec!["<remote/>".to_string()]
        );

        let join = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "join")
            .with_str("peer", &owner.to_urn())
            .with_str("groups", "math")
            .with_str("seq", "2");
        broker.handle_message(&join);
        assert!(broker.groups().is_member(&GroupId::new("math"), &owner));
        let leave = Message::new(MessageKind::BrokerSync, origin, 0)
            .with_str("op", "leave")
            .with_str("peer", &owner.to_urn())
            .with_str("seq", "3");
        broker.handle_message(&leave);
        assert!(!broker.groups().is_member(&GroupId::new("math"), &owner));
        assert!(broker.home_of(&owner).is_none());
        assert_eq!(broker.federation_stats().syncs_applied, 3);
    }

    #[test]
    fn relay_to_locally_homed_peer_delivers_payload() {
        let (net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let bob = PeerId::random(&mut rng);
        let bob_rx = net.register(bob);
        connect_and_login(&broker, alice, "alice", "pw-a");
        connect_and_login(&broker, bob, "bob", "pw-b");

        let inner = Message::new(MessageKind::PeerText, alice, 7)
            .with_str("group", "math")
            .with_str("text", "via broker");
        let relay = Message::new(MessageKind::RelayViaBroker, alice, 8)
            .with_str("to", &bob.to_urn())
            .with_element("payload", inner.to_bytes());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element_str("route").unwrap(), "local");

        let delivered = bob_rx.try_recv().unwrap();
        let delivered = Message::from_bytes(&delivered.payload).unwrap();
        assert_eq!(delivered, inner, "the relayed payload arrives unmodified");
        assert_eq!(broker.federation_stats().relays_delivered, 1);
    }

    #[test]
    fn relay_requires_login_and_known_destination() {
        let (_net, _db, broker, mut rng) = setup();
        let alice = PeerId::random(&mut rng);
        let stranger = PeerId::random(&mut rng);

        let relay = Message::new(MessageKind::RelayViaBroker, alice, 1)
            .with_str("to", &stranger.to_urn())
            .with_element("payload", b"x".to_vec());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("login"));

        connect_and_login(&broker, alice, "alice", "pw-a");
        let relay = Message::new(MessageKind::RelayViaBroker, alice, 2)
            .with_str("to", &stranger.to_urn())
            .with_element("payload", b"x".to_vec());
        let resp = broker.handle_message(&relay).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("unknown destination"));
        assert_eq!(broker.federation_stats().relays_failed, 1);
    }

    #[test]
    fn spawned_broker_answers_over_the_network() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);

        let connect = Message::new(MessageKind::ConnectRequest, peer, 77);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let reply_msg = Message::from_bytes(&reply.payload).unwrap();
        assert_eq!(reply_msg.kind, MessageKind::ConnectResponse);
        assert_eq!(reply_msg.request_id, 77);
        handle.shutdown();
    }

    #[test]
    fn undecodable_traffic_is_ignored_by_running_broker() {
        let (net, _db, broker, mut rng) = setup();
        let handle = broker.spawn();
        let peer = PeerId::random(&mut rng);
        let rx = net.register(peer);
        net.send(peer, handle.id(), b"garbage".to_vec()).unwrap();
        // A valid message afterwards still gets served.
        let connect = Message::new(MessageKind::ConnectRequest, peer, 1);
        net.send(peer, handle.id(), connect.to_bytes()).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(Message::from_bytes(&reply.payload).unwrap().kind, MessageKind::ConnectResponse);
        handle.shutdown();
    }
}
