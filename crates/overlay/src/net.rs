//! The simulated network substrate.
//!
//! Real JXTA-Overlay deployments exchange messages over TCP/HTTP transports
//! between machines; the paper's measurements therefore mix CPU cost (the
//! cryptography) with wire cost (latency and serialisation of the payload).
//! The simulator reproduces that split explicitly:
//!
//! * Delivery happens in-process over crossbeam channels, so the *real* time
//!   spent is the compute cost of whatever the peers do with the messages.
//! * Every delivered message is charged a *virtual wire time* computed by the
//!   [`LinkModel`] (`latency + bytes / bandwidth`), which the client and
//!   broker modules accumulate in their [`crate::metrics`] so experiments can
//!   report `total = cpu + wire` exactly as a testbed measurement would.
//!
//! The network also supports pluggable [`Adversary`] implementations used by
//! the security evaluation: an adversary can observe (eavesdrop), drop,
//! rewrite or redirect messages, and inject new ones (replay).

use crate::error::OverlayError;
use crate::id::PeerId;
use crossbeam::channel::{bounded, unbounded, Receiver, SendTimeoutError, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a delivery into a full bounded inbox waits for the receiver to
/// make room before the message is dropped (see
/// [`SimNetwork::set_backpressure_timeout`]).
pub const DEFAULT_BACKPRESSURE_TIMEOUT: Duration = Duration::from_secs(2);

/// Latency/bandwidth model of the links between peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// One-way latency charged per message.
    pub latency: Duration,
    /// Link bandwidth in bytes per second (0 means infinite bandwidth).
    pub bandwidth_bytes_per_sec: u64,
}

impl LinkModel {
    /// An ideal link: no latency, infinite bandwidth.  Useful for isolating
    /// pure CPU cost in ablation benchmarks.
    pub fn ideal() -> Self {
        LinkModel {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: 0,
        }
    }

    /// A local-area network similar to the paper's testbed: 2 ms one-way
    /// latency, 100 Mbit/s (12.5 MB/s).
    pub fn lan() -> Self {
        LinkModel {
            latency: Duration::from_millis(2),
            bandwidth_bytes_per_sec: 12_500_000,
        }
    }

    /// A wide-area link: 40 ms latency, 10 Mbit/s.
    pub fn wan() -> Self {
        LinkModel {
            latency: Duration::from_millis(40),
            bandwidth_bytes_per_sec: 1_250_000,
        }
    }

    /// Creates a custom link model.
    pub fn new(latency: Duration, bandwidth_bytes_per_sec: u64) -> Self {
        LinkModel {
            latency,
            bandwidth_bytes_per_sec,
        }
    }

    /// Virtual time needed to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec == 0 {
            return self.latency;
        }
        let nanos = (bytes as u128 * 1_000_000_000u128) / self.bandwidth_bytes_per_sec as u128;
        self.latency + Duration::from_nanos(nanos as u64)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::lan()
    }
}

/// A message in flight on the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetMessage {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Serialised [`crate::message::Message`] bytes.
    pub payload: Vec<u8>,
    /// Virtual wire time charged to this delivery.
    pub wire_time: Duration,
}

/// What an adversary decides to do with an intercepted message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver the message unchanged.
    Deliver,
    /// Silently drop the message.
    Drop,
    /// Deliver the message to a different peer instead of the original
    /// destination (traffic redirection, e.g. DNS spoofing towards a fake
    /// broker).
    Redirect(PeerId),
    /// Replace the payload before delivery (man-in-the-middle tampering).
    Tamper(Vec<u8>),
    /// Deliver, but charge the given extra virtual wire time on top of the
    /// link model's cost (a latency spike on a congested or rerouted edge).
    Delay(Duration),
}

/// A network-level adversary.
///
/// The default implementations make an adversary that does nothing; concrete
/// attacks (eavesdropper, fake broker, replay attacker, advertisement forger)
/// live in the `jxta-overlay-secure` crate's `attacks` module.
pub trait Adversary: Send + Sync {
    /// Called for every message with read-only access (eavesdropping).
    fn observe(&self, _message: &NetMessage) {}

    /// Decides the fate of the message.
    fn intercept(&self, _message: &NetMessage) -> Verdict {
        Verdict::Deliver
    }

    /// Messages to inject into the network after this delivery (replay or
    /// forgery).  Each is delivered verbatim to its `to` peer.
    fn inject(&self, _message: &NetMessage) -> Vec<NetMessage> {
        Vec::new()
    }
}

/// A deterministic lossy-network adversary: drops each intercepted message
/// with a fixed probability, driven by a seeded SplitMix64 stream so runs
/// reproduce exactly.  Optionally scoped to messages *between* a set of
/// peers (e.g. the broker backbone, leaving client links untouched) — the
/// workload the anti-entropy repair experiments and proptests subject the
/// federation to.
pub struct RandomDrop {
    percent: u32,
    state: Mutex<u64>,
    scope: Option<Vec<PeerId>>,
    dropped: Mutex<u64>,
}

impl RandomDrop {
    /// Drops every message with probability `percent`/100 (clamped to 100),
    /// deterministically from `seed`.
    pub fn new(seed: u64, percent: u32) -> Arc<Self> {
        Arc::new(RandomDrop {
            percent: percent.min(100),
            state: Mutex::with_class("net.randomdrop.state", seed),
            scope: None,
            dropped: Mutex::with_class("net.randomdrop.dropped", 0),
        })
    }

    /// Like [`RandomDrop::new`], but only messages whose sender *and*
    /// receiver are both in `peers` are subject to dropping.
    pub fn between(seed: u64, percent: u32, peers: Vec<PeerId>) -> Arc<Self> {
        Arc::new(RandomDrop {
            percent: percent.min(100),
            state: Mutex::with_class("net.randomdrop.state", seed),
            scope: Some(peers),
            dropped: Mutex::with_class("net.randomdrop.dropped", 0),
        })
    }

    /// Number of messages dropped so far.
    pub fn dropped_count(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Next value of the SplitMix64 stream.
    fn next(&self) -> u64 {
        let mut state = self.state.lock();
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Adversary for RandomDrop {
    fn intercept(&self, message: &NetMessage) -> Verdict {
        if let Some(scope) = &self.scope {
            if !scope.contains(&message.from) || !scope.contains(&message.to) {
                return Verdict::Deliver;
            }
        }
        if (self.next() % 100) < u64::from(self.percent) {
            *self.dropped.lock() += 1;
            Verdict::Drop
        } else {
            Verdict::Deliver
        }
    }
}

/// One scheduled fault of a [`FaultPlan`].  Tick windows are half-open:
/// a fault is active while `from_tick <= tick < until_tick`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `peer` crash-stops at `at_tick`: every message from or to it is
    /// dropped from then on.  The peer stays registered — a crash is not an
    /// operator-driven `remove_broker`, which is exactly the blindness the
    /// SWIM detector exists to cure.
    CrashStop {
        /// The crashing peer.
        peer: PeerId,
        /// First tick at which the peer is dark.
        at_tick: u64,
    },
    /// `peer` crashes at `at_tick` and recovers `recover_after` ticks later
    /// (process restart): messages drop only inside the window.
    CrashRecover {
        /// The crashing peer.
        peer: PeerId,
        /// First tick at which the peer is dark.
        at_tick: u64,
        /// Ticks until it answers again.
        recover_after: u64,
    },
    /// One-way partition: messages from `from` to `to` are dropped inside
    /// the window while the reverse direction keeps flowing (the asymmetric
    /// reachability NAT and routing failures produce).
    PartitionOneWay {
        /// Sending side of the severed direction.
        from: PeerId,
        /// Receiving side of the severed direction.
        to: PeerId,
        /// First tick of the partition window.
        from_tick: u64,
        /// First tick after the window.
        until_tick: u64,
    },
    /// The edge between `a` and `b` (both directions) charges `extra`
    /// virtual wire time inside the window (congestion, a rerouted path).
    LatencySpike {
        /// One endpoint of the slow edge.
        a: PeerId,
        /// The other endpoint.
        b: PeerId,
        /// Extra wire time charged per delivery.
        extra: Duration,
        /// First tick of the spike window.
        from_tick: u64,
        /// First tick after the window.
        until_tick: u64,
    },
    /// The edge between `a` and `b` (both directions) drops each message
    /// with probability `drop_percent`/100, from the plan's seeded stream.
    FlakyLink {
        /// One endpoint of the flaky edge.
        a: PeerId,
        /// The other endpoint.
        b: PeerId,
        /// Drop probability in percent (clamped to 100).
        drop_percent: u32,
    },
}

/// A deterministic fault-injection adversary: a scripted set of [`Fault`]s
/// evaluated against a logical tick counter the driving harness advances
/// (usually once per federation repair round).  Every decision — including
/// the flaky-link coin flips — derives from the seed and the tick, so a
/// failing run replays exactly.
///
/// ```
/// # use jxta_overlay::net::{FaultPlan, LinkModel, SimNetwork};
/// # use jxta_overlay::id::PeerId;
/// # use jxta_crypto::drbg::HmacDrbg;
/// # let mut rng = HmacDrbg::from_seed_u64(7);
/// # let a = PeerId::random(&mut rng);
/// # let b = PeerId::random(&mut rng);
/// let plan = FaultPlan::new(0xFEED)
///     .crash_stop(a, 3)
///     .partition_one_way(b, a, 1, 4)
///     .flaky_link(a, b, 20)
///     .into_adversary();
/// let network = SimNetwork::new(LinkModel::ideal());
/// network.set_adversary(plan.clone());
/// // ... per harness round: drive the federation, then
/// plan.advance_tick();
/// ```
pub struct FaultPlan {
    faults: Vec<Fault>,
    tick: AtomicU64,
    /// Seeded SplitMix64 stream behind the flaky-link decisions.
    state: Mutex<u64>,
    dropped: AtomicU64,
}

impl FaultPlan {
    /// Creates an empty plan whose flaky links draw from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            faults: Vec::new(),
            tick: AtomicU64::new(0),
            state: Mutex::with_class("net.faultplan.state", seed),
            dropped: AtomicU64::new(0),
        }
    }

    /// Adds a [`Fault::CrashStop`].
    pub fn crash_stop(mut self, peer: PeerId, at_tick: u64) -> Self {
        self.faults.push(Fault::CrashStop { peer, at_tick });
        self
    }

    /// Adds a [`Fault::CrashRecover`].
    pub fn crash_recover(mut self, peer: PeerId, at_tick: u64, recover_after: u64) -> Self {
        self.faults.push(Fault::CrashRecover {
            peer,
            at_tick,
            recover_after,
        });
        self
    }

    /// Adds a [`Fault::PartitionOneWay`] active for `from_tick <= tick <
    /// until_tick`.
    pub fn partition_one_way(
        mut self,
        from: PeerId,
        to: PeerId,
        from_tick: u64,
        until_tick: u64,
    ) -> Self {
        self.faults.push(Fault::PartitionOneWay {
            from,
            to,
            from_tick,
            until_tick,
        });
        self
    }

    /// Adds a [`Fault::LatencySpike`] on the `a`↔`b` edge.
    pub fn latency_spike(
        mut self,
        a: PeerId,
        b: PeerId,
        extra: Duration,
        from_tick: u64,
        until_tick: u64,
    ) -> Self {
        self.faults.push(Fault::LatencySpike {
            a,
            b,
            extra,
            from_tick,
            until_tick,
        });
        self
    }

    /// Adds a [`Fault::FlakyLink`] on the `a`↔`b` edge (always active).
    pub fn flaky_link(mut self, a: PeerId, b: PeerId, drop_percent: u32) -> Self {
        self.faults.push(Fault::FlakyLink {
            a,
            b,
            drop_percent: drop_percent.min(100),
        });
        self
    }

    /// Finishes the builder for [`SimNetwork::set_adversary`].
    pub fn into_adversary(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Advances the logical clock by one tick and returns the new value.
    /// The harness calls this once per round (after pumping the round's
    /// traffic), so every fault window is expressed in rounds.
    pub fn advance_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Messages dropped by this plan so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Returns `true` while `peer` is dark at the current tick — harnesses
    /// use it to stop driving a crashed broker's repair cadence.
    pub fn is_crashed(&self, peer: &PeerId) -> bool {
        let now = self.tick();
        self.faults.iter().any(|fault| match fault {
            Fault::CrashStop { peer: p, at_tick } => p == peer && now >= *at_tick,
            Fault::CrashRecover {
                peer: p,
                at_tick,
                recover_after,
            } => p == peer && now >= *at_tick && now < at_tick + recover_after,
            _ => false,
        })
    }

    /// Next value of the SplitMix64 stream.
    fn next(&self) -> u64 {
        let mut state = self.state.lock();
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn count_drop(&self) -> Verdict {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        Verdict::Drop
    }
}

impl Adversary for FaultPlan {
    fn intercept(&self, message: &NetMessage) -> Verdict {
        let now = self.tick();
        if self.is_crashed(&message.from) || self.is_crashed(&message.to) {
            return self.count_drop();
        }
        let mut delay = Duration::ZERO;
        for fault in &self.faults {
            match fault {
                Fault::PartitionOneWay {
                    from,
                    to,
                    from_tick,
                    until_tick,
                } => {
                    if message.from == *from
                        && message.to == *to
                        && now >= *from_tick
                        && now < *until_tick
                    {
                        return self.count_drop();
                    }
                }
                Fault::FlakyLink { a, b, drop_percent } => {
                    let on_edge = (message.from == *a && message.to == *b)
                        || (message.from == *b && message.to == *a);
                    if on_edge && (self.next() % 100) < u64::from(*drop_percent) {
                        return self.count_drop();
                    }
                }
                Fault::LatencySpike {
                    a,
                    b,
                    extra,
                    from_tick,
                    until_tick,
                } => {
                    let on_edge = (message.from == *a && message.to == *b)
                        || (message.from == *b && message.to == *a);
                    if on_edge && now >= *from_tick && now < *until_tick {
                        delay += *extra;
                    }
                }
                Fault::CrashStop { .. } | Fault::CrashRecover { .. } => {}
            }
        }
        if delay > Duration::ZERO {
            Verdict::Delay(delay)
        } else {
            Verdict::Deliver
        }
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of messages accepted for delivery.
    pub messages_sent: u64,
    /// Number of messages dropped by the adversary.
    pub messages_dropped: u64,
    /// Total payload bytes accepted for delivery.
    pub bytes_sent: u64,
    /// Accumulated virtual wire time of all deliveries.
    pub total_wire_time: Duration,
    /// Deliveries that found a bounded inbox full and had to wait for the
    /// receiver (backpressure events — the sender stalls instead of queueing
    /// without bound).
    pub inbox_overflows: u64,
    /// Deliveries abandoned because a bounded inbox stayed full past the
    /// backpressure timeout (the overload analogue of an adversarial drop —
    /// anti-entropy repair is what heals whatever state they carried).
    pub overflow_dropped: u64,
}

/// The in-process message-passing network connecting all peers.
pub struct SimNetwork {
    endpoints: RwLock<HashMap<PeerId, Sender<NetMessage>>>,
    link: LinkModel,
    /// Per-edge link overrides (e.g. WAN links between brokers while clients
    /// stay on the default LAN).  Keyed by the directed `(from, to)` pair;
    /// [`SimNetwork::set_link_between`] installs both directions.
    link_overrides: RwLock<HashMap<(PeerId, PeerId), LinkModel>>,
    adversary: RwLock<Option<Arc<dyn Adversary>>>,
    stats: Mutex<NetStats>,
    /// How long a delivery into a full bounded inbox waits before dropping.
    backpressure_timeout: Mutex<Duration>,
    /// Messages successfully enqueued per destination, ever.  Paired with a
    /// receiver-side processed counter this gives a race-free quiescence
    /// check (see `BrokerNetwork::converged`): a destination is idle exactly
    /// when it has processed as many messages as were delivered to it.
    delivered: Mutex<HashMap<PeerId, u64>>,
    /// Messages shed per destination after the backpressure timeout — the
    /// per-peer breakdown of [`NetStats::overflow_dropped`].  Benchmarks use
    /// it to prove a measured row dropped nothing at a specific broker.
    shed: Mutex<HashMap<PeerId, u64>>,
    /// Messages successfully enqueued per **sender**, ever.  The per-broker
    /// load view the backbone experiments need: a full-mesh origin sends
    /// O(N) messages per publish while an epidemic origin sends O(fanout),
    /// which only a sender-side counter can show.
    sent: Mutex<HashMap<PeerId, u64>>,
}

impl SimNetwork {
    /// Creates a network with the given link model.
    pub fn new(link: LinkModel) -> Arc<Self> {
        Arc::new(SimNetwork {
            endpoints: RwLock::with_class("net.endpoints", HashMap::new()),
            link,
            link_overrides: RwLock::with_class("net.link_overrides", HashMap::new()),
            adversary: RwLock::with_class("net.adversary", None),
            stats: Mutex::with_class("net.stats", NetStats::default()),
            backpressure_timeout: Mutex::with_class("net.backpressure_timeout", DEFAULT_BACKPRESSURE_TIMEOUT),
            delivered: Mutex::with_class("net.delivered", HashMap::new()),
            shed: Mutex::with_class("net.shed", HashMap::new()),
            sent: Mutex::with_class("net.sent", HashMap::new()),
        })
    }

    /// Creates a network with the default LAN link model.
    pub fn new_lan() -> Arc<Self> {
        Self::new(LinkModel::lan())
    }

    /// The link model used for wire-time accounting.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Installs a dedicated link model for the edge between `a` and `b`
    /// (both directions).  Other pairs keep using the default link.
    pub fn set_link_between(&self, a: PeerId, b: PeerId, link: LinkModel) {
        let mut overrides = self.link_overrides.write();
        overrides.insert((a, b), link);
        overrides.insert((b, a), link);
    }

    /// The link model in effect between `from` and `to`.
    pub fn link_between(&self, from: PeerId, to: PeerId) -> LinkModel {
        self.link_overrides
            .read()
            .get(&(from, to))
            .copied()
            .unwrap_or(self.link)
    }

    /// Registers a peer and returns the receiving end of its inbox.
    ///
    /// Registering an already-registered peer replaces its endpoint (the old
    /// receiver stops getting messages), mirroring a peer that reconnects.
    pub fn register(&self, peer: PeerId) -> Receiver<NetMessage> {
        let (tx, rx) = unbounded();
        self.endpoints.write().insert(peer, tx);
        rx
    }

    /// Registers a peer with a **bounded** inbox of at most `capacity`
    /// queued messages.  A delivery that finds the inbox full waits for the
    /// receiver (explicit backpressure, counted in
    /// [`NetStats::inbox_overflows`]); if the inbox is still full after the
    /// backpressure timeout the message is dropped and counted in
    /// [`NetStats::overflow_dropped`] — an overloaded receiver sheds load
    /// instead of growing an unbounded queue.
    pub fn register_bounded(&self, peer: PeerId, capacity: usize) -> Receiver<NetMessage> {
        let (tx, rx) = bounded(capacity);
        self.endpoints.write().insert(peer, tx);
        rx
    }

    /// Sets how long a delivery into a full bounded inbox waits for the
    /// receiver before the message is dropped (default
    /// [`DEFAULT_BACKPRESSURE_TIMEOUT`]).  Tests use a tiny timeout to
    /// exercise the shedding path deterministically.
    pub fn set_backpressure_timeout(&self, timeout: Duration) {
        *self.backpressure_timeout.lock() = timeout;
    }

    /// Removes a peer from the network (it becomes unreachable).
    pub fn unregister(&self, peer: &PeerId) {
        self.endpoints.write().remove(peer);
    }

    /// Returns `true` if the peer currently has a registered endpoint.
    pub fn is_registered(&self, peer: &PeerId) -> bool {
        self.endpoints.read().contains_key(peer)
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Installs (or replaces) the network adversary.
    pub fn set_adversary(&self, adversary: Arc<dyn Adversary>) {
        *self.adversary.write() = Some(adversary);
    }

    /// Removes the adversary.
    pub fn clear_adversary(&self) {
        *self.adversary.write() = None;
    }

    /// Snapshot of the aggregate traffic statistics.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// Returns the virtual wire time charged for the delivery.  Fails with
    /// [`OverlayError::PeerUnreachable`] if the destination (after possible
    /// adversarial redirection) has no registered endpoint.
    pub fn send(&self, from: PeerId, to: PeerId, payload: Vec<u8>) -> Result<Duration, OverlayError> {
        self.forward(from, to, payload, Duration::ZERO)
    }

    /// Sends `payload` as the next hop of a relayed delivery.
    ///
    /// `carried_wire` is the wire time the message already accumulated on
    /// previous hops; this hop's cost is computed from its own
    /// [`LinkModel`] (see [`SimNetwork::link_between`]) and *added* to it, so
    /// a multi-hop delivery charges every hop separately instead of only the
    /// first one.  The delivered [`NetMessage::wire_time`] and the returned
    /// duration are the cumulative end-to-end wire time; the network's
    /// aggregate [`NetStats`] are charged only this hop (previous hops were
    /// charged when they were sent).
    pub fn forward(
        &self,
        from: PeerId,
        to: PeerId,
        payload: Vec<u8>,
        carried_wire: Duration,
    ) -> Result<Duration, OverlayError> {
        let mut hop_time = self.link_between(from, to).transfer_time(payload.len());
        let wire_time = carried_wire + hop_time;
        let mut message = NetMessage {
            from,
            to,
            payload,
            wire_time,
        };

        let adversary = self.adversary.read().clone();
        if let Some(adv) = &adversary {
            adv.observe(&message);
            match adv.intercept(&message) {
                Verdict::Deliver => {}
                Verdict::Drop => {
                    self.stats.lock().messages_dropped += 1;
                    // The sender still paid the wire time; the message just
                    // never arrives.
                    return Ok(wire_time);
                }
                Verdict::Redirect(new_to) => message.to = new_to,
                Verdict::Tamper(new_payload) => message.payload = new_payload,
                Verdict::Delay(extra) => {
                    hop_time += extra;
                    message.wire_time += extra;
                }
            }
        }

        if !self.deliver(&message)? {
            // The destination's bounded inbox stayed full past the
            // backpressure timeout: the message was shed (and counted) but
            // the sender still paid the wire time, like an adversarial drop.
            return Ok(message.wire_time);
        }
        {
            let mut stats = self.stats.lock();
            stats.messages_sent += 1;
            stats.bytes_sent += message.payload.len() as u64;
            // Aggregate accounting is per hop: previous hops of a relayed
            // delivery were already charged when they were sent.
            stats.total_wire_time += hop_time;
        }

        if let Some(adv) = &adversary {
            for injected in adv.inject(&message) {
                // Injected traffic is delivered on a best-effort basis and
                // counted as ordinary traffic.
                if matches!(self.deliver(&injected), Ok(true)) {
                    let mut stats = self.stats.lock();
                    stats.messages_sent += 1;
                    stats.bytes_sent += injected.payload.len() as u64;
                    stats.total_wire_time += injected.wire_time;
                }
            }
        }

        Ok(message.wire_time)
    }

    /// Enqueues `message` at its destination.  Returns `Ok(true)` when it was
    /// delivered, `Ok(false)` when a bounded inbox shed it after the
    /// backpressure timeout, and `Err` when the destination has no endpoint.
    fn deliver(&self, message: &NetMessage) -> Result<bool, OverlayError> {
        // Clone the sender out of the endpoint map so a backpressure wait
        // never blocks registrations.
        let tx = self
            .endpoints
            .read()
            .get(&message.to)
            .cloned()
            .ok_or(OverlayError::PeerUnreachable(message.to))?;
        match tx.try_send(message.clone()) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => {
                return Err(OverlayError::PeerUnreachable(message.to));
            }
            Err(TrySendError::Full(queued)) => {
                self.stats.lock().inbox_overflows += 1;
                let timeout = *self.backpressure_timeout.lock();
                match tx.send_timeout(queued, timeout) {
                    Ok(()) => {}
                    Err(SendTimeoutError::Timeout(_)) => {
                        self.stats.lock().overflow_dropped += 1;
                        *self.shed.lock().entry(message.to).or_insert(0) += 1;
                        return Ok(false);
                    }
                    Err(SendTimeoutError::Disconnected(_)) => {
                        return Err(OverlayError::PeerUnreachable(message.to));
                    }
                }
            }
        }
        *self.delivered.lock().entry(message.to).or_insert(0) += 1;
        *self.sent.lock().entry(message.from).or_insert(0) += 1;
        Ok(true)
    }

    /// Total messages ever enqueued for `peer` (monotone).
    pub fn delivered_to(&self, peer: &PeerId) -> u64 {
        self.delivered.lock().get(peer).copied().unwrap_or(0)
    }

    /// Total messages ever shed at `peer`'s bounded inbox after the
    /// backpressure timeout (monotone) — the per-peer view of
    /// [`NetStats::overflow_dropped`].
    pub fn shed_to(&self, peer: &PeerId) -> u64 {
        self.shed.lock().get(peer).copied().unwrap_or(0)
    }

    /// Total messages ever successfully sent *by* `peer` (monotone).
    /// Redirected deliveries still count against the original sender; shed
    /// and adversarially dropped messages never enqueued, so they don't.
    pub fn sent_by(&self, peer: &PeerId) -> u64 {
        self.sent.lock().get(peer).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn peers(n: usize) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(0x1234);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    #[test]
    fn link_model_transfer_time() {
        let ideal = LinkModel::ideal();
        assert_eq!(ideal.transfer_time(1_000_000), Duration::ZERO);

        let link = LinkModel::new(Duration::from_millis(2), 1_000_000);
        assert_eq!(link.transfer_time(0), Duration::from_millis(2));
        assert_eq!(link.transfer_time(1_000_000), Duration::from_millis(1002));
        // Larger payloads cost proportionally more.
        assert!(link.transfer_time(10_000) > link.transfer_time(1_000));
        assert_eq!(LinkModel::default(), LinkModel::lan());
        assert!(LinkModel::wan().latency > LinkModel::lan().latency);
    }

    #[test]
    fn register_send_receive() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        assert!(net.is_registered(&ids[0]));
        assert_eq!(net.peer_count(), 2);

        net.send(ids[0], ids[1], b"hello".to_vec()).unwrap();
        let msg = rx_b.try_recv().unwrap();
        assert_eq!(msg.from, ids[0]);
        assert_eq!(msg.to, ids[1]);
        assert_eq!(msg.payload, b"hello");
    }

    #[test]
    fn send_to_unknown_peer_fails() {
        let net = SimNetwork::new_lan();
        let ids = peers(2);
        let _rx = net.register(ids[0]);
        assert!(matches!(
            net.send(ids[0], ids[1], b"x".to_vec()),
            Err(OverlayError::PeerUnreachable(_))
        ));
    }

    #[test]
    fn unregister_makes_peer_unreachable() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let _rx_b = net.register(ids[1]);
        net.unregister(&ids[1]);
        assert!(!net.is_registered(&ids[1]));
        assert!(net.send(ids[0], ids[1], vec![1]).is_err());
    }

    #[test]
    fn wire_time_matches_link_model() {
        let link = LinkModel::new(Duration::from_millis(5), 1000);
        let net = SimNetwork::new(link);
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        let wire = net.send(ids[0], ids[1], vec![0u8; 500]).unwrap();
        assert_eq!(wire, link.transfer_time(500));
        assert_eq!(rx_b.try_recv().unwrap().wire_time, wire);
    }

    #[test]
    fn per_edge_link_overrides_apply_in_both_directions() {
        let lan = LinkModel::new(Duration::from_millis(2), 0);
        let wan = LinkModel::new(Duration::from_millis(40), 0);
        let net = SimNetwork::new(lan);
        let ids = peers(3);
        let _rxs: Vec<_> = ids.iter().map(|id| net.register(*id)).collect();
        net.set_link_between(ids[0], ids[1], wan);

        assert_eq!(net.link_between(ids[0], ids[1]), wan);
        assert_eq!(net.link_between(ids[1], ids[0]), wan);
        assert_eq!(net.link_between(ids[0], ids[2]), lan);

        let wire = net.send(ids[0], ids[1], vec![0u8; 8]).unwrap();
        assert_eq!(wire, Duration::from_millis(40));
        let wire = net.send(ids[0], ids[2], vec![0u8; 8]).unwrap();
        assert_eq!(wire, Duration::from_millis(2));
    }

    #[test]
    fn relayed_forward_charges_every_hop() {
        // A 2-hop relay must charge each hop's LinkModel separately: the
        // delivered wire time is the sum of both links, not just the first.
        let first = LinkModel::new(Duration::from_millis(5), 1000);
        let second = LinkModel::new(Duration::from_millis(7), 500);
        let net = SimNetwork::new(first);
        let ids = peers(3);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        let rx_c = net.register(ids[2]);
        net.set_link_between(ids[1], ids[2], second);

        let payload = vec![0u8; 100];
        let first_hop = net.send(ids[0], ids[1], payload.clone()).unwrap();
        assert_eq!(first_hop, first.transfer_time(100));
        let relayed = rx_b.try_recv().unwrap();
        let total = net
            .forward(ids[1], ids[2], relayed.payload.clone(), relayed.wire_time)
            .unwrap();
        assert_eq!(
            total,
            first.transfer_time(100) + second.transfer_time(100),
            "2-hop wire time must be the sum of both links"
        );
        assert_eq!(rx_c.try_recv().unwrap().wire_time, total);
        // The aggregate stats are charged per hop, with no double counting.
        assert_eq!(net.stats().total_wire_time, total);
    }

    #[test]
    fn stats_accumulate() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let _rx_b = net.register(ids[1]);
        net.send(ids[0], ids[1], vec![0u8; 10]).unwrap();
        net.send(ids[1], ids[0], vec![0u8; 20]).unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.bytes_sent, 30);
        assert_eq!(stats.messages_dropped, 0);
    }

    struct DropAll;
    impl Adversary for DropAll {
        fn intercept(&self, _m: &NetMessage) -> Verdict {
            Verdict::Drop
        }
    }

    #[test]
    fn adversary_can_drop_messages() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        net.set_adversary(Arc::new(DropAll));
        net.send(ids[0], ids[1], vec![1, 2, 3]).unwrap();
        assert!(rx_b.try_recv().is_err());
        assert_eq!(net.stats().messages_dropped, 1);
        net.clear_adversary();
        net.send(ids[0], ids[1], vec![1]).unwrap();
        assert!(rx_b.try_recv().is_ok());
    }

    struct RedirectTo(PeerId);
    impl Adversary for RedirectTo {
        fn intercept(&self, _m: &NetMessage) -> Verdict {
            Verdict::Redirect(self.0)
        }
    }

    #[test]
    fn adversary_can_redirect_messages() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(3);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        let rx_c = net.register(ids[2]);
        net.set_adversary(Arc::new(RedirectTo(ids[2])));
        net.send(ids[0], ids[1], b"for b".to_vec()).unwrap();
        assert!(rx_b.try_recv().is_err(), "original destination starves");
        let got = rx_c.try_recv().unwrap();
        assert_eq!(got.payload, b"for b");
    }

    struct CountingObserver(AtomicUsize);
    impl Adversary for CountingObserver {
        fn observe(&self, _m: &NetMessage) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn adversary_observes_every_message() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let _rx_b = net.register(ids[1]);
        let observer = Arc::new(CountingObserver(AtomicUsize::new(0)));
        net.set_adversary(observer.clone());
        for _ in 0..5 {
            net.send(ids[0], ids[1], vec![0u8; 8]).unwrap();
        }
        assert_eq!(observer.0.load(Ordering::SeqCst), 5);
    }

    struct Replayer;
    impl Adversary for Replayer {
        fn inject(&self, message: &NetMessage) -> Vec<NetMessage> {
            vec![message.clone()]
        }
    }

    #[test]
    fn adversary_can_inject_replays() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        net.set_adversary(Arc::new(Replayer));
        net.send(ids[0], ids[1], b"once".to_vec()).unwrap();
        // The original plus one replay.
        assert_eq!(rx_b.try_iter().count(), 2);
        assert_eq!(net.stats().messages_sent, 2);
    }

    struct Tamperer;
    impl Adversary for Tamperer {
        fn intercept(&self, _m: &NetMessage) -> Verdict {
            Verdict::Tamper(b"forged".to_vec())
        }
    }

    #[test]
    fn adversary_can_tamper_payloads() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        net.set_adversary(Arc::new(Tamperer));
        net.send(ids[0], ids[1], b"original".to_vec()).unwrap();
        assert_eq!(rx_b.try_recv().unwrap().payload, b"forged");
    }

    #[test]
    fn random_drop_is_deterministic_and_scoped() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(3);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        let rx_c = net.register(ids[2]);
        net.set_adversary(RandomDrop::between(7, 100, vec![ids[0], ids[1]]));
        net.send(ids[0], ids[1], vec![1]).unwrap(); // in scope: dropped
        net.send(ids[0], ids[2], vec![2]).unwrap(); // out of scope: delivered
        assert!(rx_b.try_recv().is_err());
        assert!(rx_c.try_recv().is_ok());

        // Same seed, same decisions — runs reproduce exactly.
        let msg = NetMessage {
            from: ids[0],
            to: ids[1],
            payload: Vec::new(),
            wire_time: Duration::ZERO,
        };
        let a = RandomDrop::new(42, 50);
        let b = RandomDrop::new(42, 50);
        for _ in 0..32 {
            assert_eq!(a.intercept(&msg), b.intercept(&msg));
        }
        assert_eq!(a.dropped_count(), b.dropped_count());
        assert_eq!(RandomDrop::new(1, 0).intercept(&msg), Verdict::Deliver);
    }

    #[test]
    fn bounded_inbox_applies_backpressure_then_sheds() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register_bounded(ids[1], 2);
        net.set_backpressure_timeout(Duration::from_millis(5));

        net.send(ids[0], ids[1], vec![1]).unwrap();
        net.send(ids[0], ids[1], vec![2]).unwrap();
        assert_eq!(net.stats().inbox_overflows, 0);

        // Third delivery finds the inbox full; nobody drains it, so after
        // the backpressure timeout the message is shed (not an error).
        net.send(ids[0], ids[1], vec![3]).unwrap();
        let stats = net.stats();
        assert_eq!(stats.inbox_overflows, 1);
        assert_eq!(stats.overflow_dropped, 1);
        assert_eq!(stats.messages_sent, 2, "the shed message was never counted as sent");
        assert_eq!(net.delivered_to(&ids[1]), 2, "nor as delivered");
        assert_eq!(net.shed_to(&ids[1]), 1, "the shed is attributed to its destination");
        assert_eq!(net.shed_to(&ids[0]), 0);

        // Draining makes room; deliveries resume without further overflow.
        assert_eq!(rx_b.try_iter().count(), 2);
        net.send(ids[0], ids[1], vec![4]).unwrap();
        assert_eq!(net.stats().overflow_dropped, 1);
        assert_eq!(rx_b.try_recv().unwrap().payload, vec![4]);
    }

    #[test]
    fn bounded_inbox_backpressure_waits_for_a_live_consumer() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register_bounded(ids[1], 1);
        net.send(ids[0], ids[1], vec![1]).unwrap();

        // A consumer drains concurrently: the overflowing delivery blocks
        // briefly (counted as an overflow) and then lands — nothing is lost.
        let net2 = Arc::clone(&net);
        let from = ids[0];
        let to = ids[1];
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| net2.send(from, to, vec![2]).unwrap());
            let mut got = Vec::new();
            while got.len() < 2 {
                if let Ok(message) = rx_b.recv_timeout(Duration::from_secs(2)) {
                    got.push(message.payload[0]);
                }
            }
            assert_eq!(got, vec![1, 2], "per-sender FIFO order survives backpressure");
        })
        .unwrap();
        assert_eq!(net.stats().overflow_dropped, 0);
    }

    #[test]
    fn reregistering_replaces_endpoint() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_old = net.register(ids[1]);
        let rx_new = net.register(ids[1]);
        assert_eq!(net.peer_count(), 2);
        net.send(ids[0], ids[1], vec![7]).unwrap();
        assert!(rx_old.try_recv().is_err());
        assert!(rx_new.try_recv().is_ok());
    }

    #[test]
    fn concurrent_sends_from_many_threads() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(5);
        let receivers: Vec<_> = ids.iter().map(|id| net.register(*id)).collect();
        let net2 = Arc::clone(&net);
        crossbeam::thread::scope(|s| {
            for (i, &from) in ids.iter().enumerate() {
                let net = Arc::clone(&net2);
                let targets = ids.clone();
                s.spawn(move |_| {
                    for (j, &to) in targets.iter().enumerate() {
                        if i != j {
                            net.send(from, to, vec![i as u8, j as u8]).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        let total: usize = receivers.iter().map(|r| r.try_iter().count()).sum();
        assert_eq!(total, 5 * 4);
        assert_eq!(net.stats().messages_sent, 20);
    }

    #[test]
    fn fault_plan_crash_windows() {
        let ids = peers(2);
        let plan = FaultPlan::new(1)
            .crash_stop(ids[0], 3)
            .crash_recover(ids[1], 2, 4)
            .into_adversary();
        // tick 0..=2: the crash-stop peer is up; the crash-recover peer goes
        // dark at 2 and returns at 6, the crash-stop peer never returns.
        assert!(!plan.is_crashed(&ids[0]));
        assert!(!plan.is_crashed(&ids[1]));
        for _ in 0..2 {
            plan.advance_tick();
        }
        assert_eq!(plan.tick(), 2);
        assert!(!plan.is_crashed(&ids[0]));
        assert!(plan.is_crashed(&ids[1]));
        for _ in 0..4 {
            plan.advance_tick();
        }
        assert_eq!(plan.tick(), 6);
        assert!(plan.is_crashed(&ids[0]), "crash-stop is permanent");
        assert!(!plan.is_crashed(&ids[1]), "crash-recover returns");
    }

    #[test]
    fn fault_plan_crashed_peer_sends_and_receives_nothing() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(3);
        let rx: Vec<_> = ids.iter().map(|id| net.register(*id)).collect();
        let plan = FaultPlan::new(2).crash_stop(ids[0], 1).into_adversary();
        net.set_adversary(plan.clone());

        net.send(ids[0], ids[1], vec![1]).unwrap();
        assert!(rx[1].try_recv().is_ok(), "not crashed yet at tick 0");
        plan.advance_tick();
        net.send(ids[0], ids[1], vec![2]).unwrap();
        net.send(ids[1], ids[0], vec![3]).unwrap();
        net.send(ids[1], ids[2], vec![4]).unwrap();
        assert!(rx[1].try_recv().is_err(), "outbound from the crashed peer dropped");
        assert!(rx[0].try_recv().is_err(), "inbound to the crashed peer dropped");
        assert_eq!(rx[2].try_recv().unwrap().payload, vec![4], "third parties unaffected");
        assert_eq!(plan.dropped_count(), 2);
    }

    #[test]
    fn fault_plan_one_way_partition_drops_only_that_direction() {
        let net = SimNetwork::new(LinkModel::ideal());
        let ids = peers(2);
        let rx: Vec<_> = ids.iter().map(|id| net.register(*id)).collect();
        let plan = FaultPlan::new(3)
            .partition_one_way(ids[0], ids[1], 0, 2)
            .into_adversary();
        net.set_adversary(plan.clone());

        net.send(ids[0], ids[1], vec![1]).unwrap();
        net.send(ids[1], ids[0], vec![2]).unwrap();
        assert!(rx[1].try_recv().is_err(), "partitioned direction dropped");
        assert_eq!(rx[0].try_recv().unwrap().payload, vec![2], "reverse direction flows");

        plan.advance_tick();
        plan.advance_tick();
        net.send(ids[0], ids[1], vec![3]).unwrap();
        assert_eq!(
            rx[1].try_recv().unwrap().payload,
            vec![3],
            "the window is half-open: tick 2 is already healed"
        );
    }

    #[test]
    fn fault_plan_flaky_link_is_seeded_and_deterministic() {
        let ids = peers(3);
        let run = |seed: u64| {
            let net = SimNetwork::new(LinkModel::ideal());
            let rx: Vec<_> = ids.iter().map(|id| net.register(*id)).collect();
            let plan = FaultPlan::new(seed).flaky_link(ids[0], ids[1], 40).into_adversary();
            net.set_adversary(plan.clone());
            let mut delivered = Vec::new();
            for i in 0..50u8 {
                net.send(ids[0], ids[1], vec![i]).unwrap();
                net.send(ids[1], ids[0], vec![i]).unwrap();
                net.send(ids[0], ids[2], vec![i]).unwrap();
            }
            delivered.push(rx[1].try_iter().count());
            delivered.push(rx[0].try_iter().count());
            delivered.push(rx[2].try_iter().count());
            (delivered, plan.dropped_count())
        };
        let (first, first_drops) = run(0xF1A5);
        let (again, again_drops) = run(0xF1A5);
        assert_eq!(first, again, "same seed, same drops");
        assert_eq!(first_drops, again_drops);
        assert!(first_drops > 0, "a 40% link does drop");
        assert!(first[0] < 50, "the flaky edge lost traffic");
        assert!(first[1] < 50, "the flaky edge is bidirectional");
        assert_eq!(first[2], 50, "the off-edge traffic is untouched");
        let (other, _) = run(0x0DD5);
        assert_ne!(first, other, "a different seed draws a different stream");
    }

    #[test]
    fn fault_plan_latency_spike_stretches_wire_time() {
        let base = LinkModel::new(Duration::from_millis(2), 0);
        let net = SimNetwork::new(base);
        let ids = peers(2);
        let _rx_a = net.register(ids[0]);
        let rx_b = net.register(ids[1]);
        let extra = Duration::from_millis(75);
        let plan = FaultPlan::new(4)
            .latency_spike(ids[0], ids[1], extra, 0, 1)
            .into_adversary();
        net.set_adversary(plan.clone());

        let spiked = net.send(ids[0], ids[1], vec![0u8; 8]).unwrap();
        assert_eq!(spiked, Duration::from_millis(2) + extra);
        assert_eq!(rx_b.try_recv().unwrap().wire_time, spiked);

        plan.advance_tick();
        let healed = net.send(ids[0], ids[1], vec![0u8; 8]).unwrap();
        assert_eq!(healed, Duration::from_millis(2), "the spike window closed");
    }
}
