//! The one place library code reads the host clock.
//!
//! Determinism discipline: simulation results must be a function of seeds
//! and message order, never of wall-clock readings, so raw
//! `Instant::now()` calls are banned from library crates (`jxta-lint`'s
//! `raw-clock` rule; the bench crate, whose whole job is timing, is
//! exempt).  Code that legitimately needs real time — spawned-thread
//! deadline waits, CPU metering — routes through this module instead,
//! which keeps every clock read greppable and gives a future virtual
//! clock a single seam to patch.

use std::time::{Duration, Instant};

/// Reads the monotonic clock.
#[allow(clippy::disallowed_methods)]
pub fn now() -> Instant {
    // lint:allow(raw-clock, the clock abstraction itself)
    Instant::now()
}

/// A wall-clock deadline for bounded waits (spawned-broker tests, pump
/// loops).  Wraps the raw instant so call sites express intent — "give up
/// after `timeout`" — rather than clock arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline { at: now() + timeout }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        now() >= self.at
    }

    /// Time left until the deadline, `None` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.checked_duration_since(now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires() {
        let deadline = Deadline::after(Duration::ZERO);
        assert!(deadline.expired());
        assert!(deadline.remaining().is_none());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining().is_some());
    }
}
