//! JXTA-style messages: a message kind plus a set of named binary elements.
//!
//! JXTA transports application data as *messages* containing named message
//! elements.  JXTA-Overlay's Control Module builds its primitives and
//! functions on top of that.  The simulator keeps the same shape: a
//! [`Message`] has a [`MessageKind`] (which primitive or function it belongs
//! to) and a list of `(name, bytes)` elements, and serialises to a compact
//! length-prefixed binary layout so that the network layer can charge
//! bandwidth for realistic message sizes.

use crate::error::OverlayError;
use crate::id::{PeerId, PEER_ID_LEN};

/// The kind of a JXTA-Overlay message — which primitive or broker function
/// it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Client → broker: open a connection (discovery primitive `connect`).
    ConnectRequest = 1,
    /// Broker → client: connection accepted.
    ConnectResponse = 2,
    /// Client → broker: authenticate an end user (`login`).
    LoginRequest = 3,
    /// Broker → client: login outcome.
    LoginResponse = 4,
    /// Client ↔ client: a simple text message (`sendMsgPeer`).
    PeerText = 5,
    /// Client → broker: publish an advertisement for distribution.
    PublishAdvertisement = 6,
    /// Broker → clients: an advertisement forwarded to group members.
    AdvertisementPush = 7,
    /// Client → broker: look up advertisements / peer info.
    LookupRequest = 8,
    /// Broker → client: lookup results.
    LookupResponse = 9,
    /// Client → broker: ask the home broker to relay an opaque payload to a
    /// peer that may be homed at another broker of the federation.
    RelayViaBroker = 10,
    /// Secure extension: challenge sent by the client (`secureConnection`).
    SecureConnectChallenge = 20,
    /// Secure extension: broker's signed response to the challenge.
    SecureConnectResponse = 21,
    /// Secure extension: encrypted login request (`secureLogin`).
    SecureLoginRequest = 22,
    /// Secure extension: broker's response carrying the issued credential.
    SecureLoginResponse = 23,
    /// Secure extension: encrypted and signed peer message (`secureMsgPeer`).
    SecurePeerText = 24,
    /// Secure extension: a broker-pushed update of the federation's
    /// credential set, sent to *live* clients when a broker is admitted so
    /// peers that joined earlier can validate advertisements signed under
    /// the newcomer's credentials.
    CredentialUpdate = 25,
    /// Generic acknowledgement / error report.
    Ack = 30,
    /// Broker ↔ broker: federation gossip replicating the advertisement
    /// index, group membership and peer→broker routing.
    BrokerSync = 40,
    /// Broker ↔ broker: a relayed client payload crossing the backbone.
    BrokerRelay = 41,
    /// Broker ↔ broker: a lookup (advertisement search / pipe resolution /
    /// group-membership query) routed to a shard replica of the queried key.
    ShardQuery = 42,
    /// Broker ↔ broker: a shard replica's answer to a [`MessageKind::ShardQuery`].
    ShardResponse = 43,
    /// Broker ↔ broker: an anti-entropy digest — per-section hashes of the
    /// state the sender and receiver are jointly responsible for.  A receiver
    /// whose own hashes disagree answers with
    /// [`MessageKind::AntiEntropySnapshot`].
    AntiEntropyDigest = 44,
    /// Broker ↔ broker: a full snapshot of the mismatched anti-entropy
    /// sections, merged with last-writer-wins versions so repair can never
    /// regress a newer write.  Also carries range-scoped *pages* during a
    /// hash-tree descent: the same element layout plus a `[range-lo,
    /// range-hi]` shard-key window that bounds what the page covers.
    AntiEntropySnapshot = 45,
    /// Broker ↔ broker: one leg of a hash-tree descent.  Carries the child
    /// summaries of repair-tree nodes the two brokers disagree on; the
    /// receiver compares them against its own tree and answers with the next
    /// level down, or with range-scoped [`MessageKind::AntiEntropySnapshot`]
    /// pages once a divergent range is small enough to ship.
    AntiEntropyRange = 46,
    /// Broker ↔ broker: a HyParView shuffle — a pseudo-random sample of the
    /// sender's partial view, offered so the receiver can refresh its
    /// passive (healing) reservoir.  Answered with
    /// [`MessageKind::MembershipShuffleReply`].
    MembershipShuffle = 47,
    /// Broker ↔ broker: the receiver's own sample answering a
    /// [`MessageKind::MembershipShuffle`] (not answered further).
    MembershipShuffleReply = 48,
    /// Broker ↔ broker: a lazy Plumtree digest — the gossip ids of broadcast
    /// events the sender holds but did not push eagerly over this edge.  A
    /// receiver missing one answers [`MessageKind::PlumtreeGraft`].
    PlumtreeIHave = 49,
    /// Broker ↔ broker: pulls broadcast events a digest revealed as missed
    /// and promotes the advertising edge into the sender's eager tree.
    PlumtreeGraft = 50,
    /// Broker ↔ broker: demotes the edge to lazy — the receiver keeps
    /// delivering duplicates the tree already covers.
    PlumtreePrune = 51,
    /// Broker ↔ broker: a SWIM direct probe.  Carries the sender's
    /// incarnation; an optional `reply-to` element names the broker the ack
    /// must go to (set when the ping travels an indirect route on behalf of
    /// another prober).  Answered with [`MessageKind::SwimAck`].
    SwimPing = 52,
    /// Broker ↔ broker: an indirect probe request — the sender's direct
    /// probe of `target` timed out, so the receiver pings `target` itself
    /// with `reply-to` pointing back at the original prober.
    SwimPingReq = 53,
    /// Broker ↔ broker: a liveness acknowledgement carrying the acking
    /// broker's incarnation (direct evidence overriding gossiped verdicts).
    SwimAck = 54,
}

impl MessageKind {
    /// Decodes a kind from its wire byte.
    pub fn from_u8(value: u8) -> Option<Self> {
        use MessageKind::*;
        Some(match value {
            1 => ConnectRequest,
            2 => ConnectResponse,
            3 => LoginRequest,
            4 => LoginResponse,
            5 => PeerText,
            6 => PublishAdvertisement,
            7 => AdvertisementPush,
            8 => LookupRequest,
            9 => LookupResponse,
            10 => RelayViaBroker,
            20 => SecureConnectChallenge,
            21 => SecureConnectResponse,
            22 => SecureLoginRequest,
            23 => SecureLoginResponse,
            24 => SecurePeerText,
            25 => CredentialUpdate,
            30 => Ack,
            40 => BrokerSync,
            41 => BrokerRelay,
            42 => ShardQuery,
            43 => ShardResponse,
            44 => AntiEntropyDigest,
            45 => AntiEntropySnapshot,
            46 => AntiEntropyRange,
            47 => MembershipShuffle,
            48 => MembershipShuffleReply,
            49 => PlumtreeIHave,
            50 => PlumtreeGraft,
            51 => PlumtreePrune,
            52 => SwimPing,
            53 => SwimPingReq,
            54 => SwimAck,
            _ => return None,
        })
    }
}

/// A named message element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageElement {
    /// Element name (e.g. `"username"`, `"payload"`).
    pub name: String,
    /// Raw element content.
    pub content: Vec<u8>,
}

/// A JXTA-Overlay message: a kind, a sender, a request identifier and a set
/// of named elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Which primitive/function this message belongs to.
    pub kind: MessageKind,
    /// The peer that created the message.
    pub sender: PeerId,
    /// Correlates requests with responses.
    pub request_id: u64,
    /// Named data elements.
    pub elements: Vec<MessageElement>,
}

impl Message {
    /// Creates an empty message.
    pub fn new(kind: MessageKind, sender: PeerId, request_id: u64) -> Self {
        Message {
            kind,
            sender,
            request_id,
            elements: Vec::new(),
        }
    }

    /// Adds an element (builder style).
    pub fn with_element(mut self, name: impl Into<String>, content: impl Into<Vec<u8>>) -> Self {
        self.push_element(name, content);
        self
    }

    /// Adds a UTF-8 string element (builder style).
    pub fn with_str(self, name: impl Into<String>, content: &str) -> Self {
        self.with_element(name, content.as_bytes().to_vec())
    }

    /// Appends an element.
    pub fn push_element(&mut self, name: impl Into<String>, content: impl Into<Vec<u8>>) {
        self.elements.push(MessageElement {
            name: name.into(),
            content: content.into(),
        });
    }

    /// Looks up an element's raw content by name.
    ///
    /// This is a linear scan — fine for the handful of named fields a normal
    /// message carries, quadratic when called per entry of a bulk message.
    /// Loops over `{prefix}{i}-{field}` style names must build an
    /// [`ElementIndex`] once instead.
    pub fn element(&self, name: &str) -> Option<&[u8]> {
        let position = self.elements.iter().position(|e| e.name == name);
        #[cfg(test)]
        scan_probe::record(match position {
            Some(found) => found + 1,
            None => self.elements.len(),
        });
        position.map(|at| self.elements[at].content.as_slice())
    }

    /// Builds a one-pass name→content index over the elements.
    pub fn index(&self) -> ElementIndex<'_> {
        ElementIndex::new(self)
    }

    /// Number of elements this message carries.  Bulk decoders use it to cap
    /// allocations sized by a count that arrived on the wire: entries cannot
    /// outnumber the elements that encode them.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Looks up an element and decodes it as UTF-8.
    pub fn element_str(&self, name: &str) -> Option<String> {
        self.element(name)
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// Looks up a required element, producing a descriptive error when absent.
    pub fn require(&self, name: &str) -> Result<&[u8], OverlayError> {
        self.element(name)
            .ok_or_else(|| OverlayError::MalformedMessage(format!("missing element {name:?}")))
    }

    /// Looks up a required element as a UTF-8 string.
    pub fn require_str(&self, name: &str) -> Result<String, OverlayError> {
        Ok(String::from_utf8_lossy(self.require(name)?).into_owned())
    }

    /// Total payload size (sum of element contents), used by workload
    /// generators and tests.
    pub fn payload_len(&self) -> usize {
        self.elements.iter().map(|e| e.content.len()).sum()
    }

    /// Serialises the message to its wire format.
    ///
    /// Layout: `"JXMS"`, kind byte, 16-byte sender, 8-byte request id,
    /// 4-byte element count, then per element a 2-byte name length, the name,
    /// a 4-byte content length and the content (all integers big-endian).
    ///
    /// The element count is 32-bit: bulk messages (flat anti-entropy
    /// snapshots of large shards) legitimately exceed 65 535 elements, and a
    /// 16-bit count would wrap silently, producing bytes the receiver
    /// rejects as trailing garbage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut size = 4 + 1 + PEER_ID_LEN + 8 + 4;
        for e in &self.elements {
            size += 2 + e.name.len() + 4 + e.content.len();
        }
        let mut out = Vec::with_capacity(size);
        out.extend_from_slice(b"JXMS");
        out.push(self.kind as u8);
        out.extend_from_slice(self.sender.as_bytes());
        out.extend_from_slice(&self.request_id.to_be_bytes());
        out.extend_from_slice(&(self.elements.len() as u32).to_be_bytes());
        for e in &self.elements {
            out.extend_from_slice(&(e.name.len() as u16).to_be_bytes());
            out.extend_from_slice(e.name.as_bytes());
            out.extend_from_slice(&(e.content.len() as u32).to_be_bytes());
            out.extend_from_slice(&e.content);
        }
        out
    }

    /// Parses a message from its wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OverlayError> {
        let err = |what: &str| OverlayError::MalformedMessage(what.to_string());
        if bytes.len() < 4 + 1 + PEER_ID_LEN + 8 + 4 || &bytes[..4] != b"JXMS" {
            return Err(err("missing JXMS header"));
        }
        let mut offset = 4usize;
        let kind = MessageKind::from_u8(bytes[offset]).ok_or_else(|| err("unknown message kind"))?;
        offset += 1;
        let mut sender_bytes = [0u8; PEER_ID_LEN];
        sender_bytes.copy_from_slice(&bytes[offset..offset + PEER_ID_LEN]);
        let sender = PeerId::from_bytes(sender_bytes);
        offset += PEER_ID_LEN;
        let request_id = u64::from_be_bytes(bytes[offset..offset + 8].try_into().unwrap());
        offset += 8;
        let count = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;

        // Cap the pre-allocation: a forged count must not reserve memory the
        // payload cannot back (each element costs at least 6 bytes on the wire).
        let mut elements = Vec::with_capacity(count.min(bytes.len() / 6 + 1));
        for _ in 0..count {
            if bytes.len() < offset + 2 {
                return Err(err("truncated element name length"));
            }
            let name_len = u16::from_be_bytes(bytes[offset..offset + 2].try_into().unwrap()) as usize;
            offset += 2;
            if bytes.len() < offset + name_len {
                return Err(err("truncated element name"));
            }
            let name = String::from_utf8_lossy(&bytes[offset..offset + name_len]).into_owned();
            offset += name_len;
            if bytes.len() < offset + 4 {
                return Err(err("truncated element content length"));
            }
            let content_len =
                u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += 4;
            if bytes.len() < offset + content_len {
                return Err(err("truncated element content"));
            }
            let content = bytes[offset..offset + content_len].to_vec();
            offset += content_len;
            elements.push(MessageElement { name, content });
        }
        if offset != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(Message {
            kind,
            sender,
            request_id,
            elements,
        })
    }
}

/// A name→content index built in one pass over a message's elements.
///
/// Handlers that address entries via `{section}{i}-{field}` style names must
/// use this instead of per-name [`Message::element`] calls: each of those is
/// a linear scan, so an n-entry bulk message merged field-by-field costs
/// O(n²) element visits.  First occurrence of a name wins, matching
/// [`Message::element`].
pub struct ElementIndex<'a> {
    by_name: std::collections::HashMap<&'a str, &'a [u8]>,
}

impl<'a> ElementIndex<'a> {
    /// Indexes every element of `message`.
    pub fn new(message: &'a Message) -> Self {
        let mut by_name = std::collections::HashMap::with_capacity(message.elements.len());
        for element in &message.elements {
            by_name
                .entry(element.name.as_str())
                .or_insert_with(|| element.content.as_slice());
        }
        ElementIndex { by_name }
    }

    /// Raw content of element `name`.
    pub fn get(&self, name: &str) -> Option<&'a [u8]> {
        self.by_name.get(name).copied()
    }

    /// UTF-8 decoded content of element `name`.
    pub fn get_str(&self, name: &str) -> Option<String> {
        self.get(name).map(|b| String::from_utf8_lossy(b).into_owned())
    }
}

/// Test-only instrumentation counting how many elements linear
/// [`Message::element`] lookups visit, so regression tests can pin bulk
/// merge paths to O(n) total element visits.
#[cfg(test)]
pub(crate) mod scan_probe {
    use std::sync::atomic::{AtomicU64, Ordering};

    static VISITED: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn record(elements: usize) {
        VISITED.fetch_add(elements as u64, Ordering::Relaxed);
    }

    /// Cumulative elements visited by `Message::element` process-wide.
    pub(crate) fn visited() -> u64 {
        VISITED.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peer() -> PeerId {
        let mut rng = HmacDrbg::from_seed_u64(1);
        PeerId::random(&mut rng)
    }

    #[test]
    fn kind_roundtrip() {
        for kind in [
            MessageKind::ConnectRequest,
            MessageKind::ConnectResponse,
            MessageKind::LoginRequest,
            MessageKind::LoginResponse,
            MessageKind::PeerText,
            MessageKind::PublishAdvertisement,
            MessageKind::AdvertisementPush,
            MessageKind::LookupRequest,
            MessageKind::LookupResponse,
            MessageKind::RelayViaBroker,
            MessageKind::SecureConnectChallenge,
            MessageKind::SecureConnectResponse,
            MessageKind::SecureLoginRequest,
            MessageKind::SecureLoginResponse,
            MessageKind::SecurePeerText,
            MessageKind::CredentialUpdate,
            MessageKind::Ack,
            MessageKind::BrokerSync,
            MessageKind::BrokerRelay,
            MessageKind::ShardQuery,
            MessageKind::ShardResponse,
            MessageKind::AntiEntropyDigest,
            MessageKind::AntiEntropySnapshot,
            MessageKind::AntiEntropyRange,
            MessageKind::MembershipShuffle,
            MessageKind::MembershipShuffleReply,
            MessageKind::PlumtreeIHave,
            MessageKind::PlumtreeGraft,
            MessageKind::PlumtreePrune,
            MessageKind::SwimPing,
            MessageKind::SwimPingReq,
            MessageKind::SwimAck,
        ] {
            assert_eq!(MessageKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(MessageKind::from_u8(250), None);
    }

    #[test]
    fn build_and_access_elements() {
        let msg = Message::new(MessageKind::LoginRequest, peer(), 7)
            .with_str("username", "alice")
            .with_element("password", b"secret".to_vec());
        assert_eq!(msg.element_str("username"), Some("alice".to_string()));
        assert_eq!(msg.element("password"), Some(&b"secret"[..]));
        assert_eq!(msg.element("missing"), None);
        assert_eq!(msg.payload_len(), 5 + 6);
        assert_eq!(msg.require_str("username").unwrap(), "alice");
        assert!(matches!(
            msg.require("missing"),
            Err(OverlayError::MalformedMessage(_))
        ));
    }

    #[test]
    fn wire_roundtrip() {
        let msg = Message::new(MessageKind::PeerText, peer(), 42)
            .with_str("text", "hello group")
            .with_element("binary", vec![0u8, 1, 2, 255])
            .with_element("empty", Vec::new());
        let bytes = msg.to_bytes();
        let parsed = Message::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn wire_roundtrip_no_elements() {
        let msg = Message::new(MessageKind::Ack, peer(), 0);
        assert_eq!(Message::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn wire_roundtrip_large_payload() {
        let payload = vec![0xabu8; 1 << 20];
        let msg = Message::new(MessageKind::PeerText, peer(), 1).with_element("payload", payload.clone());
        let bytes = msg.to_bytes();
        assert!(bytes.len() > payload.len());
        let parsed = Message::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.element("payload").unwrap(), &payload[..]);
    }

    #[test]
    fn wire_roundtrip_beyond_u16_element_count() {
        // A flat anti-entropy snapshot of a 10⁵-entry shard carries 600k+
        // elements; the old 16-bit element count wrapped silently and the
        // receiver rejected the bytes as trailing garbage.
        let mut msg = Message::new(MessageKind::AntiEntropySnapshot, peer(), 3);
        for i in 0..70_000u32 {
            msg.push_element(format!("e{i}"), i.to_be_bytes().to_vec());
        }
        let parsed = Message::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.elements.len(), 70_000);
        assert_eq!(parsed, msg);
    }

    #[test]
    fn element_index_matches_linear_lookup() {
        let msg = Message::new(MessageKind::Ack, peer(), 0)
            .with_str("first", "1")
            .with_element("blob", vec![7u8, 8])
            .with_str("first", "shadowed");
        let idx = msg.index();
        assert_eq!(idx.get_str("first").as_deref(), Some("1"));
        assert_eq!(idx.get("blob"), msg.element("blob"));
        assert_eq!(idx.get("missing"), None);
        assert_eq!(idx.get_str("first"), msg.element_str("first"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Message::from_bytes(b"").is_err());
        assert!(Message::from_bytes(b"JXMS").is_err());
        assert!(Message::from_bytes(&[0u8; 64]).is_err());
        let msg = Message::new(MessageKind::Ack, peer(), 0).with_str("a", "b");
        let mut bytes = msg.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Message::from_bytes(&bytes).is_err());
        let mut bytes = msg.to_bytes();
        bytes.push(9);
        assert!(Message::from_bytes(&bytes).is_err());
        // Unknown kind byte.
        let mut bytes = msg.to_bytes();
        bytes[4] = 200;
        assert!(Message::from_bytes(&bytes).is_err());
    }

    #[test]
    fn sender_and_request_id_preserved() {
        let p = peer();
        let msg = Message::new(MessageKind::LookupRequest, p, 0xdead_beef);
        let parsed = Message::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.sender, p);
        assert_eq!(parsed.request_id, 0xdead_beef);
        assert_eq!(parsed.kind, MessageKind::LookupRequest);
    }
}
