//! Hybrid wrapped-key encryption — the `E_PK(x)` operation of the paper.
//!
//! The paper encrypts login requests and secure messages "using the public
//! key of peer *i* by means of a wrapped key encryption scheme (such as the
//! one defined in PKCS#1)".  This module implements exactly that hybrid
//! scheme:
//!
//! 1. A fresh 32-byte content-encryption secret is generated.
//! 2. The payload is encrypted with AES-256-CTR under a key derived from the
//!    secret.
//! 3. An HMAC-SHA-256 tag over the ciphertext (under a second derived key)
//!    provides integrity, so corrupted or truncated envelopes are rejected
//!    before any higher-level processing.
//! 4. The secret itself is wrapped under the recipient's RSA public key
//!    with RSAES-PKCS1-v1_5 — the "wrapped key encryption scheme (such as
//!    the one defined in PKCS#1)" the paper cites.
//!
//! The resulting [`Envelope`] serialises to a compact length-prefixed binary
//! layout, which is what travels inside JXTA-Overlay messages.

use crate::aes::{ctr_process, Aes, BLOCK_LEN};
use crate::error::CryptoError;
use crate::hmac::{constant_time_eq, hmac_sha256};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha2::Sha256;
use rand::RngCore;

/// Size of the content-encryption secret wrapped by RSA.
pub const SECRET_LEN: usize = 32;

/// A sealed wrapped-key envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// RSA (PKCS#1 v1.5) wrapping of the content-encryption secret.
    wrapped_key: Vec<u8>,
    /// CTR nonce used for the payload.
    nonce: [u8; BLOCK_LEN],
    /// AES-256-CTR encrypted payload.
    ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over nonce and ciphertext.
    mac: [u8; 32],
}

/// Derives the AES key and the MAC key from the wrapped secret.
fn derive_keys(secret: &[u8]) -> ([u8; 32], [u8; 32]) {
    let mut enc = Sha256::new();
    enc.update(b"jxta-overlay-envelope-enc");
    enc.update(secret);
    let mut mac = Sha256::new();
    mac.update(b"jxta-overlay-envelope-mac");
    mac.update(secret);
    (enc.finalize(), mac.finalize())
}

/// Seals `plaintext` for the holder of `recipient`'s private key.
///
/// Works with any RSA key of at least 512 bits (PKCS#1 v1.5 wrapping needs
/// `modulus_len >= 11 + 32` bytes for the 32-byte secret).
pub fn seal_envelope<R: RngCore + ?Sized>(
    rng: &mut R,
    recipient: &RsaPublicKey,
    plaintext: &[u8],
) -> Result<Envelope, CryptoError> {
    let mut secret = [0u8; SECRET_LEN];
    rng.fill_bytes(&mut secret);
    let mut nonce = [0u8; BLOCK_LEN];
    rng.fill_bytes(&mut nonce);

    let (enc_key, mac_key) = derive_keys(&secret);
    let aes = Aes::new(&enc_key)?;
    let mut ciphertext = plaintext.to_vec();
    ctr_process(&aes, &nonce, &mut ciphertext);

    let mut mac_input = Vec::with_capacity(BLOCK_LEN + ciphertext.len());
    mac_input.extend_from_slice(&nonce);
    mac_input.extend_from_slice(&ciphertext);
    let mac = hmac_sha256(&mac_key, &mac_input);

    let wrapped_key = recipient.encrypt_pkcs1_v15(rng, &secret)?;

    Ok(Envelope {
        wrapped_key,
        nonce,
        ciphertext,
        mac,
    })
}

/// Opens an envelope with the recipient's private key, verifying integrity.
pub fn open_envelope(recipient: &RsaPrivateKey, envelope: &Envelope) -> Result<Vec<u8>, CryptoError> {
    let secret = recipient.decrypt_pkcs1_v15(&envelope.wrapped_key)?;
    if secret.len() != SECRET_LEN {
        return Err(CryptoError::Malformed("envelope secret length".into()));
    }
    let (enc_key, mac_key) = derive_keys(&secret);

    let mut mac_input = Vec::with_capacity(BLOCK_LEN + envelope.ciphertext.len());
    mac_input.extend_from_slice(&envelope.nonce);
    mac_input.extend_from_slice(&envelope.ciphertext);
    let expected_mac = hmac_sha256(&mac_key, &mac_input);
    if !constant_time_eq(&expected_mac, &envelope.mac) {
        return Err(CryptoError::MacMismatch);
    }

    let aes = Aes::new(&enc_key)?;
    let mut plaintext = envelope.ciphertext.clone();
    ctr_process(&aes, &envelope.nonce, &mut plaintext);
    Ok(plaintext)
}

impl Envelope {
    /// Length in bytes of the serialised envelope.
    pub fn serialized_len(&self) -> usize {
        4 + 4 + self.wrapped_key.len() + BLOCK_LEN + 4 + self.ciphertext.len() + 32
    }

    /// Length of the encrypted payload.
    pub fn ciphertext_len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Serialises the envelope: magic `"JXEV"`, wrapped-key length + bytes,
    /// nonce, ciphertext length + bytes, MAC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(b"JXEV");
        out.extend_from_slice(&(self.wrapped_key.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.wrapped_key);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses an envelope serialised with [`Envelope::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = |what: &str| CryptoError::Malformed(format!("envelope: {what}"));
        if bytes.len() < 8 || &bytes[..4] != b"JXEV" {
            return Err(err("missing JXEV header"));
        }
        let mut offset = 4usize;

        let need = |offset: usize, n: usize| -> Result<(), CryptoError> {
            if bytes.len() < offset + n {
                Err(err("truncated"))
            } else {
                Ok(())
            }
        };

        need(offset, 4)?;
        let wk_len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        need(offset, wk_len)?;
        let wrapped_key = bytes[offset..offset + wk_len].to_vec();
        offset += wk_len;

        need(offset, BLOCK_LEN)?;
        let mut nonce = [0u8; BLOCK_LEN];
        nonce.copy_from_slice(&bytes[offset..offset + BLOCK_LEN]);
        offset += BLOCK_LEN;

        need(offset, 4)?;
        let ct_len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        need(offset, ct_len)?;
        let ciphertext = bytes[offset..offset + ct_len].to_vec();
        offset += ct_len;

        need(offset, 32)?;
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[offset..offset + 32]);
        offset += 32;

        if offset != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(Envelope {
            wrapped_key,
            nonce,
            ciphertext,
            mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::rsa::RsaKeyPair;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        RsaKeyPair::generate(&mut rng, 1024).unwrap()
    }

    #[test]
    fn seal_open_roundtrip() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        for len in [0usize, 1, 100, 4096] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let env = seal_envelope(&mut rng, &kp.public, &msg).unwrap();
            assert_eq!(open_envelope(&kp.private, &env).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn ciphertext_is_not_plaintext() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let msg = vec![0x55u8; 256];
        let env = seal_envelope(&mut rng, &kp.public, &msg).unwrap();
        assert_ne!(env.ciphertext, msg);
        assert_eq!(env.ciphertext_len(), msg.len());
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let kp1 = keypair(1);
        let kp2 = keypair(2);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let env = seal_envelope(&mut rng, &kp1.public, b"for peer one only").unwrap();
        assert!(open_envelope(&kp2.private, &env).is_err());
    }

    #[test]
    fn tampered_ciphertext_is_detected() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let mut env = seal_envelope(&mut rng, &kp.public, b"integrity matters").unwrap();
        env.ciphertext[3] ^= 0x80;
        assert_eq!(open_envelope(&kp.private, &env), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn tampered_nonce_is_detected() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let mut env = seal_envelope(&mut rng, &kp.public, b"integrity matters").unwrap();
        env.nonce[0] ^= 1;
        assert_eq!(open_envelope(&kp.private, &env), Err(CryptoError::MacMismatch));
    }

    #[test]
    fn tampered_wrapped_key_is_detected() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let mut env = seal_envelope(&mut rng, &kp.public, b"integrity matters").unwrap();
        env.wrapped_key[10] ^= 0xff;
        assert!(open_envelope(&kp.private, &env).is_err());
    }

    #[test]
    fn sealing_is_randomised() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let a = seal_envelope(&mut rng, &kp.public, b"same message").unwrap();
        let b = seal_envelope(&mut rng, &kp.public, b"same message").unwrap();
        assert_ne!(a.ciphertext, b.ciphertext);
        assert_ne!(a.wrapped_key, b.wrapped_key);
    }

    #[test]
    fn serialisation_roundtrip() {
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let env = seal_envelope(&mut rng, &kp.public, b"serialise me").unwrap();
        let bytes = env.to_bytes();
        assert_eq!(bytes.len(), env.serialized_len());
        let parsed = Envelope::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, env);
        assert_eq!(open_envelope(&kp.private, &parsed).unwrap(), b"serialise me");
    }

    #[test]
    fn deserialisation_rejects_garbage() {
        assert!(Envelope::from_bytes(b"").is_err());
        assert!(Envelope::from_bytes(b"JXEV").is_err());
        assert!(Envelope::from_bytes(b"NOPE\x00\x00\x00\x01").is_err());
        let kp = keypair(1);
        let mut rng = HmacDrbg::from_seed_u64(42);
        let env = seal_envelope(&mut rng, &kp.public, b"x").unwrap();
        let mut bytes = env.to_bytes();
        bytes.truncate(bytes.len() - 5);
        assert!(Envelope::from_bytes(&bytes).is_err());
        let mut bytes = env.to_bytes();
        bytes.push(0);
        assert!(Envelope::from_bytes(&bytes).is_err());
    }

    #[test]
    fn key_derivation_separates_enc_and_mac_keys() {
        let (enc, mac) = derive_keys(&[1u8; 32]);
        assert_ne!(enc, mac);
        let (enc2, _) = derive_keys(&[2u8; 32]);
        assert_ne!(enc, enc2);
    }
}
