//! A cache of *successful* RSA signature verifications.
//!
//! RSA verification is the dominant CPU cost of a broker's ingress path:
//! every signed advertisement is re-verified each time it is re-published,
//! gossiped across the backbone or re-shipped inside an anti-entropy
//! snapshot, and every admin-signed revocation list is re-verified on each
//! extension-state exchange — yet the bytes are identical every time.
//! [`VerifiedSigCache`] memoises the outcome: a `(key, message, signature)`
//! triple that verified once is recognised by its digest and skips the
//! modular exponentiation entirely.
//!
//! # What is safe to cache — and why
//!
//! Only **successes** are cached, keyed by the SHA-256 digest of the public
//! key (the *key id*) combined with the SHA-256 digest of the
//! length-prefixed `(message, signature)` pair (the *payload digest*).
//! Signature verification is a pure function of exactly those inputs, so a
//! cache hit is sound iff the digests collide only for equal inputs — which
//! SHA-256 guarantees for any adversary that cannot break the hash itself
//! (an adversary who can forge SHA-256 collisions defeats the signatures
//! directly, cache or no cache).  Failures are deliberately *not* cached:
//! they only occur under attack or corruption, so they are not a hot path
//! worth optimising, and never storing them means a poisoned entry can never
//! suppress a later legitimate verification.
//!
//! The cache is a segmented LRU (two generations): entries are promoted to
//! the current generation on hit and the previous generation is discarded
//! wholesale when the current one fills.  Memory is therefore bounded by
//! roughly `capacity` entries of 32 bytes each, with O(1) insert/lookup and
//! no linked-list bookkeeping.

use crate::error::CryptoError;
use crate::rsa::RsaPublicKey;
use crate::sha2::sha256;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;

/// Snapshot of a cache's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigCacheStats {
    /// Verifications answered from the cache (RSA skipped).
    pub hits: u64,
    /// Verifications that had to run RSA (the result was then cached if it
    /// succeeded).
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

impl SigCacheStats {
    /// Fraction of lookups answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache key: SHA-256 over the length-prefixed key bytes, message and
/// signature.  See the module docs for why equality of this digest is a
/// sound proxy for equality of the verification inputs.
fn cache_key(key: &RsaPublicKey, message: &[u8], signature: &[u8]) -> [u8; 32] {
    let key_bytes = key.to_bytes();
    let mut input =
        Vec::with_capacity(24 + key_bytes.len() + message.len() + signature.len());
    input.extend_from_slice(&(key_bytes.len() as u64).to_be_bytes());
    input.extend_from_slice(&key_bytes);
    input.extend_from_slice(&(message.len() as u64).to_be_bytes());
    input.extend_from_slice(message);
    input.extend_from_slice(&(signature.len() as u64).to_be_bytes());
    input.extend_from_slice(signature);
    sha256(&input)
}

/// A bounded digest-keyed memo table with two-generation (segmented-LRU)
/// eviction: entries are promoted to the current generation on hit, and the
/// previous generation is discarded wholesale when the current one fills.
/// Memory is bounded by ~`capacity` entries, with O(1) insert/lookup and no
/// linked-list bookkeeping.  This is the eviction policy shared by
/// [`VerifiedSigCache`] and the higher-level verdict memos built on it.
pub struct DigestCache<V> {
    /// Entries per generation; total memory is bounded by ~2× this.
    generation_capacity: usize,
    current: HashMap<[u8; 32], V>,
    previous: HashMap<[u8; 32], V>,
}

impl<V: Clone> DigestCache<V> {
    /// Creates a memo table holding at most ~`capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DigestCache {
            generation_capacity: (capacity / 2).max(1),
            current: HashMap::new(),
            previous: HashMap::new(),
        }
    }

    /// Looks `key` up, promoting a previous-generation entry so recently
    /// used entries survive the next turnover.
    pub fn get(&mut self, key: &[u8; 32]) -> Option<V> {
        if let Some(value) = self.current.get(key) {
            return Some(value.clone());
        }
        if let Some(value) = self.previous.remove(key) {
            self.insert(*key, value.clone());
            return Some(value);
        }
        None
    }

    /// Inserts an entry, rotating the generations when the current one is
    /// full.
    pub fn insert(&mut self, key: [u8; 32], value: V) {
        if self.current.len() >= self.generation_capacity {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(key, value);
    }

    /// Entries currently held across both generations.
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Returns `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded cache of successful signature verifications (see module docs).
pub struct VerifiedSigCache {
    verified: Mutex<DigestCache<()>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Default total capacity (entries across both generations).
pub const DEFAULT_SIG_CACHE_CAPACITY: usize = 4096;

impl Default for VerifiedSigCache {
    fn default() -> Self {
        Self::new(DEFAULT_SIG_CACHE_CAPACITY)
    }
}

impl VerifiedSigCache {
    /// Creates a cache holding at most ~`capacity` verified signatures.
    pub fn new(capacity: usize) -> Self {
        VerifiedSigCache {
            verified: Mutex::with_class("sigcache.verified", DigestCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Verifies `signature` over `message` with `key`, consulting the cache
    /// first.  Behaves exactly like [`RsaPublicKey::verify`], except that a
    /// triple verified before returns `Ok` without touching RSA.
    pub fn verify(
        &self,
        key: &RsaPublicKey,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let digest = cache_key(key, message, signature);
        if self
            .verified
            .lock()
            .get(&digest)
            .is_some()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        key.verify(message, signature)?;
        self.verified
            .lock()
            .insert(digest, ());
        Ok(())
    }

    /// Activity counters and current size.
    pub fn stats(&self) -> SigCacheStats {
        SigCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.verified.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::rsa::RsaKeyPair;
    use std::sync::OnceLock;

    fn keypair() -> &'static RsaKeyPair {
        static KP: OnceLock<RsaKeyPair> = OnceLock::new();
        KP.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed_u64(0x516C);
            RsaKeyPair::generate(&mut rng, 512).unwrap()
        })
    }

    #[test]
    fn caches_successful_verifications() {
        let kp = keypair();
        let cache = VerifiedSigCache::new(16);
        let signature = kp.private.sign(b"hello").unwrap();

        cache.verify(&kp.public, b"hello", &signature).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        cache.verify(&kp.public, b"hello", &signature).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn failures_are_not_cached_and_keep_failing() {
        let kp = keypair();
        let cache = VerifiedSigCache::new(16);
        let signature = kp.private.sign(b"hello").unwrap();

        assert!(cache.verify(&kp.public, b"tampered", &signature).is_err());
        assert_eq!(cache.stats().entries, 0, "failures never enter the cache");
        assert!(cache.verify(&kp.public, b"tampered", &signature).is_err());
        // A mismatched triple cannot ride on a cached success either.
        cache.verify(&kp.public, b"hello", &signature).unwrap();
        assert!(cache.verify(&kp.public, b"hello2", &signature).is_err());
        let mut wrong = signature.clone();
        wrong[0] ^= 0xff;
        assert!(cache.verify(&kp.public, b"hello", &wrong).is_err());
    }

    #[test]
    fn capacity_is_bounded_with_generational_eviction() {
        let kp = keypair();
        let cache = VerifiedSigCache::new(8);
        for i in 0..64u32 {
            let message = i.to_be_bytes();
            let signature = kp.private.sign(&message).unwrap();
            cache.verify(&kp.public, &message, &signature).unwrap();
        }
        assert!(
            cache.stats().entries <= 8,
            "entries stay bounded: {}",
            cache.stats().entries
        );
        // The most recent entry is still cached.
        let message = 63u32.to_be_bytes();
        let signature = kp.private.sign(&message).unwrap();
        let hits_before = cache.stats().hits;
        cache.verify(&kp.public, &message, &signature).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let kp = keypair();
        let mut rng = HmacDrbg::from_seed_u64(0x516D);
        let other = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cache = VerifiedSigCache::new(16);
        let signature = kp.private.sign(b"msg").unwrap();
        cache.verify(&kp.public, b"msg", &signature).unwrap();
        // Same message and signature under a different key: cache miss and a
        // genuine RSA failure.
        assert!(cache.verify(&other.public, b"msg", &signature).is_err());
    }
}
