//! The AES block cipher (FIPS-197) with CTR and CBC modes of operation.
//!
//! AES supplies the data-encapsulation half of the wrapped-key encryption
//! scheme (`E_PK(x)` in the paper): the bulk of a secure message is encrypted
//! under a fresh AES-256 key in CTR mode, and only that key is wrapped with
//! RSA.  CBC with PKCS#7 padding is also provided because it is what JXTA's
//! own TLS transport uses, and it is exercised by the ablation benchmarks.
//!
//! This is a straightforward table-free implementation computing the S-box
//! lookups from a small constant table and the MixColumns step with xtime
//! arithmetic; it is not hardened against cache-timing side channels (the
//! simulator does not need that), but it is fully compatible with the
//! standard test vectors.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Errors produced by the block-cipher modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AesError {
    /// The provided key has an unsupported length (only 16 or 32 bytes).
    InvalidKeyLength(usize),
    /// Ciphertext length is not a multiple of the block size (CBC only).
    InvalidCiphertextLength(usize),
    /// PKCS#7 padding is malformed after decryption.
    InvalidPadding,
}

impl std::fmt::Display for AesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesError::InvalidKeyLength(n) => {
                write!(f, "unsupported AES key length {n} (expected 16 or 32 bytes)")
            }
            AesError::InvalidCiphertextLength(n) => {
                write!(f, "ciphertext length {n} is not a multiple of the AES block size")
            }
            AesError::InvalidPadding => write!(f, "invalid PKCS#7 padding"),
        }
    }
}

impl std::error::Error for AesError {}

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

#[inline]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

#[inline]
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-256 (14 rounds).
    Aes256,
}

/// An expanded AES key usable for block encryption and decryption.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands a 16-byte (AES-128) or 32-byte (AES-256) key.
    pub fn new(key: &[u8]) -> Result<Self, AesError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            32 => (8usize, 14usize),
            other => return Err(AesError::InvalidKeyLength(other)),
        };

        // Key expansion into 4-byte words.
        let nwords = 4 * (rounds + 1);
        let mut words: Vec<[u8; 4]> = Vec::with_capacity(nwords);
        for chunk in key.chunks_exact(4) {
            words.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in nk..nwords {
            let mut temp = words[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = words[i - nk];
            words.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[c * 4..(c + 1) * 4].copy_from_slice(&words[r * 4 + c]);
            }
            round_keys.push(rk);
        }
        Ok(Aes { round_keys, rounds })
    }

    /// Returns the key size variant of this expanded key.
    pub fn key_size(&self) -> KeySize {
        if self.rounds == 10 {
            KeySize::Aes128
        } else {
            KeySize::Aes256
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        for round in (1..self.rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State layout: column-major, i.e. state[c*4 + r] is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift by 2 (self-inverse).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (= left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[c * 4 + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] =
            gf_mul(col[0], 0x0e) ^ gf_mul(col[1], 0x0b) ^ gf_mul(col[2], 0x0d) ^ gf_mul(col[3], 0x09);
        state[c * 4 + 1] =
            gf_mul(col[0], 0x09) ^ gf_mul(col[1], 0x0e) ^ gf_mul(col[2], 0x0b) ^ gf_mul(col[3], 0x0d);
        state[c * 4 + 2] =
            gf_mul(col[0], 0x0d) ^ gf_mul(col[1], 0x09) ^ gf_mul(col[2], 0x0e) ^ gf_mul(col[3], 0x0b);
        state[c * 4 + 3] =
            gf_mul(col[0], 0x0b) ^ gf_mul(col[1], 0x0d) ^ gf_mul(col[2], 0x09) ^ gf_mul(col[3], 0x0e);
    }
}

// ----------------------------------------------------------------------
// Modes of operation
// ----------------------------------------------------------------------

/// Encrypts or decrypts `data` in place with AES-CTR (the operation is its
/// own inverse).  The 16-byte `nonce` forms the initial counter block; the
/// counter occupies the last 8 bytes (big-endian).
pub fn ctr_process(aes: &Aes, nonce: &[u8; BLOCK_LEN], data: &mut [u8]) {
    let mut counter_block = *nonce;
    let mut counter: u64 = u64::from_be_bytes(counter_block[8..].try_into().expect("8 bytes"));
    for chunk in data.chunks_mut(BLOCK_LEN) {
        counter_block[8..].copy_from_slice(&counter.to_be_bytes());
        let mut keystream = counter_block;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Encrypts `plaintext` with AES-CBC and PKCS#7 padding.
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
    let pad_len = BLOCK_LEN - (plaintext.len() % BLOCK_LEN);
    let mut padded = Vec::with_capacity(plaintext.len() + pad_len);
    padded.extend_from_slice(plaintext);
    padded.extend(std::iter::repeat_n(pad_len as u8, pad_len));

    let mut prev = *iv;
    for block in padded.chunks_exact_mut(BLOCK_LEN) {
        let mut b = [0u8; BLOCK_LEN];
        b.copy_from_slice(block);
        for i in 0..BLOCK_LEN {
            b[i] ^= prev[i];
        }
        aes.encrypt_block(&mut b);
        block.copy_from_slice(&b);
        prev = b;
    }
    padded
}

/// Decrypts AES-CBC ciphertext and strips PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; BLOCK_LEN], ciphertext: &[u8]) -> Result<Vec<u8>, AesError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
        return Err(AesError::InvalidCiphertextLength(ciphertext.len()));
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for block in ciphertext.chunks_exact(BLOCK_LEN) {
        let mut b = [0u8; BLOCK_LEN];
        b.copy_from_slice(block);
        let cipher_copy = b;
        aes.decrypt_block(&mut b);
        for i in 0..BLOCK_LEN {
            b[i] ^= prev[i];
        }
        out.extend_from_slice(&b);
        prev = cipher_copy;
    }
    // Strip PKCS#7 padding.
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > out.len() {
        return Err(AesError::InvalidPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(AesError::InvalidPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_block() {
        // FIPS-197 Appendix B.
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = from_hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3243f6a8885a308d313198a2e0370734"));
    }

    #[test]
    fn fips197_aes128_appendix_c1() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_aes256_appendix_c3() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.key_size(), KeySize::Aes256);
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn invalid_key_lengths_rejected() {
        assert!(matches!(Aes::new(&[0u8; 15]), Err(AesError::InvalidKeyLength(15))));
        assert!(matches!(Aes::new(&[0u8; 24]), Err(AesError::InvalidKeyLength(24))));
        assert!(matches!(Aes::new(&[0u8; 0]), Err(AesError::InvalidKeyLength(0))));
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let key = from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let aes = Aes::new(&key).unwrap();
        let nonce = [7u8; 16];
        for len in [0usize, 1, 15, 16, 17, 64, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            ctr_process(&aes, &nonce, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} should be scrambled");
            }
            ctr_process(&aes, &nonce, &mut data);
            assert_eq!(data, original, "len {len} roundtrip");
        }
    }

    #[test]
    fn ctr_different_nonces_give_different_ciphertexts() {
        let aes = Aes::new(&[1u8; 32]).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_process(&aes, &[0u8; 16], &mut a);
        ctr_process(&aes, &[1u8; 16], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 32, 100] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &plaintext);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert!(ct.len() > plaintext.len(), "always at least one padding byte");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), plaintext, "len {len}");
        }
    }

    #[test]
    fn cbc_detects_truncated_ciphertext() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let iv = [3u8; 16];
        let ct = cbc_encrypt(&aes, &iv, b"hello world");
        assert!(matches!(
            cbc_decrypt(&aes, &iv, &ct[..ct.len() - 1]),
            Err(AesError::InvalidCiphertextLength(_))
        ));
        assert!(matches!(
            cbc_decrypt(&aes, &iv, &[]),
            Err(AesError::InvalidCiphertextLength(0))
        ));
    }

    #[test]
    fn cbc_detects_corrupted_padding() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let iv = [3u8; 16];
        let mut ct = cbc_encrypt(&aes, &iv, b"hello world");
        let last = ct.len() - 1;
        ct[last] ^= 0xff;
        // Either the padding check fails or (very unlikely) it decodes to
        // garbage; for this fixed key/iv it fails.
        assert_eq!(cbc_decrypt(&aes, &iv, &ct), Err(AesError::InvalidPadding));
    }

    #[test]
    fn cbc_wrong_key_does_not_roundtrip() {
        let aes1 = Aes::new(&[1u8; 16]).unwrap();
        let aes2 = Aes::new(&[2u8; 16]).unwrap();
        let iv = [0u8; 16];
        let ct = cbc_encrypt(&aes1, &iv, b"some secret message!");
        // A padding failure is also an acceptable outcome here.
        if let Ok(pt) = cbc_decrypt(&aes2, &iv, &ct) {
            assert_ne!(pt, b"some secret message!");
        }
    }

    #[test]
    fn nist_sp800_38a_ctr_aes128() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt (first block).
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let nonce: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = from_hex("6bc1bee22e409f96e93d7e117393172a");
        ctr_process(&aes, &nonce, &mut data);
        assert_eq!(data, from_hex("874d6191b620e3261bef6864990db6ce"));
    }
}
