//! HMAC keyed message authentication codes (RFC 2104 / FIPS 198-1).
//!
//! The JXTA TLS transport the paper references uses a keyed MAC for message
//! integrity; here HMAC-SHA-256 authenticates the symmetric part of the
//! wrapped-key [`envelope`](crate::envelope) so that tampering with a secure
//! message is detected before signature verification is even attempted.

use crate::sha2::{Sha256, Sha512, SHA256_BLOCK_LEN, SHA256_OUTPUT_LEN, SHA512_BLOCK_LEN, SHA512_OUTPUT_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; SHA256_OUTPUT_LEN] {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; SHA256_BLOCK_LEN];
    if key.len() > SHA256_BLOCK_LEN {
        let digest = crate::sha2::sha256(key);
        key_block[..digest.len()].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; SHA256_BLOCK_LEN];
    let mut opad = [0x5cu8; SHA256_BLOCK_LEN];
    for i in 0..SHA256_BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Computes `HMAC-SHA512(key, message)`.
pub fn hmac_sha512(key: &[u8], message: &[u8]) -> [u8; SHA512_OUTPUT_LEN] {
    let mut key_block = [0u8; SHA512_BLOCK_LEN];
    if key.len() > SHA512_BLOCK_LEN {
        let digest = crate::sha2::sha512(key);
        key_block[..digest.len()].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; SHA512_BLOCK_LEN];
    let mut opad = [0x5cu8; SHA512_BLOCK_LEN];
    for i in 0..SHA512_BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha512::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha512::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality comparison for MACs and other secret-dependent
/// byte strings.  Returns `false` for mismatched lengths.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::hex_encode;

    // RFC 4231 test vectors.

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex_encode(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex_encode(&hmac_sha512(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex_encode(&hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex_encode(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than the block size must be hashed first.
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex_encode(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        let m = b"message";
        assert_ne!(hmac_sha256(b"key-1", m), hmac_sha256(b"key-2", m));
    }

    #[test]
    fn different_messages_give_different_macs() {
        let k = b"key";
        assert_ne!(hmac_sha256(k, b"message-1"), hmac_sha256(k, b"message-2"));
    }

    #[test]
    fn constant_time_eq_behaviour() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }
}
