//! Base64 encoding and decoding (RFC 3548 / RFC 4648, standard alphabet with
//! padding).
//!
//! JXTA's own "signed advertisements" wrap the original advertisement as a
//! Base64 blob; our XMLdsig-style signatures also carry signature values and
//! credentials as Base64 text nodes inside XML documents.

/// Error returned when decoding malformed Base64 input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// The input length is not a multiple of four.
    InvalidLength(usize),
    /// A character outside the Base64 alphabet was found.
    InvalidCharacter(char),
    /// Padding characters appear in an illegal position.
    InvalidPadding,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidLength(n) => {
                write!(f, "base64 input length {n} is not a multiple of 4")
            }
            Base64Error::InvalidCharacter(c) => write!(f, "invalid base64 character {c:?}"),
            Base64Error::InvalidPadding => write!(f, "invalid base64 padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as standard Base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard Base64 (padding required, ASCII whitespace ignored).
pub fn decode(input: &str) -> Result<Vec<u8>, Base64Error> {
    let filtered: Vec<u8> = input
        .bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    if !filtered.len().is_multiple_of(4) {
        return Err(Base64Error::InvalidLength(filtered.len()));
    }
    let mut out = Vec::with_capacity(filtered.len() / 4 * 3);
    for (chunk_idx, chunk) in filtered.chunks(4).enumerate() {
        let is_last = (chunk_idx + 1) * 4 == filtered.len();
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !is_last) {
            return Err(Base64Error::InvalidPadding);
        }
        // Padding may only appear at the tail of the chunk.
        if (chunk[0] == b'=' || chunk[1] == b'=') || (chunk[2] == b'=' && chunk[3] != b'=') {
            return Err(Base64Error::InvalidPadding);
        }
        let mut vals = [0u8; 4];
        for (i, &c) in chunk.iter().enumerate() {
            if c == b'=' {
                vals[i] = 0;
            } else {
                vals[i] =
                    decode_char(c).ok_or(Base64Error::InvalidCharacter(c as char))?;
            }
        }
        let triple = ((vals[0] as u32) << 18)
            | ((vals[1] as u32) << 12)
            | ((vals[2] as u32) << 6)
            | vals[3] as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, encoded) in cases {
            assert_eq!(encode(raw), encoded);
            assert_eq!(decode(encoded).unwrap(), raw);
        }
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zm9v YmFy \t").unwrap(), b"foobar");
    }

    #[test]
    fn invalid_length_rejected() {
        assert_eq!(decode("Zm9vY"), Err(Base64Error::InvalidLength(5)));
    }

    #[test]
    fn invalid_character_rejected() {
        assert_eq!(decode("Zm9*"), Err(Base64Error::InvalidCharacter('*')));
    }

    #[test]
    fn invalid_padding_rejected() {
        // Padding in the middle of the input.
        assert_eq!(decode("Zg==Zm9v"), Err(Base64Error::InvalidPadding));
        // Triple padding.
        assert_eq!(decode("Z==="), Err(Base64Error::InvalidPadding));
        // Padding before a non-padding character.
        assert_eq!(decode("Zm=v"), Err(Base64Error::InvalidPadding));
    }

    #[test]
    fn long_input_roundtrip() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 37 % 256) as u8).collect();
        let enc = encode(&data);
        assert_eq!(enc.len(), data.len().div_ceil(3) * 4);
        assert_eq!(decode(&enc).unwrap(), data);
    }
}
