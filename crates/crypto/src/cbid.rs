//! Crypto-Based IDentifiers (CBIDs).
//!
//! A CBID is a peer identifier derived from the hash of the peer's public
//! key (Montenegro & Castelluccia, reference \[20\] of the paper).  Because
//! the identifier commits to the key, any peer can check that a public key
//! found inside a signed advertisement or credential really belongs to the
//! peer identifier that claims it — no extra key-distribution protocol is
//! needed.  This property is what the paper's `secureLogin` step 7 ("checks
//! key authenticity against the claimed client peer identifier") relies on.

use crate::rsa::RsaPublicKey;
use crate::sha2::{hex_encode, sha256};

/// Length of a CBID in bytes (SHA-256 output).
pub const CBID_LEN: usize = 32;

/// A crypto-based identifier: the SHA-256 digest of a public key encoding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cbid([u8; CBID_LEN]);

impl Cbid {
    /// Derives the CBID of an RSA public key.
    pub fn from_public_key(key: &RsaPublicKey) -> Self {
        Cbid(sha256(&key.to_bytes()))
    }

    /// Builds a CBID from raw bytes (e.g. parsed from an advertisement).
    pub fn from_bytes(bytes: [u8; CBID_LEN]) -> Self {
        Cbid(bytes)
    }

    /// Parses the `urn:jxta:cbid:<hex>` form produced by [`Cbid::to_urn`].
    pub fn from_urn(urn: &str) -> Option<Self> {
        let hex = urn.strip_prefix("urn:jxta:cbid:")?;
        if hex.len() != CBID_LEN * 2 {
            return None;
        }
        let mut bytes = [0u8; CBID_LEN];
        for (i, chunk) in hex.as_bytes().chunks_exact(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(Cbid(bytes))
    }

    /// The raw identifier bytes.
    pub fn as_bytes(&self) -> &[u8; CBID_LEN] {
        &self.0
    }

    /// Formats the identifier as a JXTA-style URN.
    pub fn to_urn(&self) -> String {
        format!("urn:jxta:cbid:{}", hex_encode(&self.0))
    }

    /// Checks that `key` is the public key this identifier was derived from.
    ///
    /// This is the key-authenticity check of the paper's `secureLogin`
    /// (step 7) and of signed-advertisement validation.
    pub fn matches_key(&self, key: &RsaPublicKey) -> bool {
        Cbid::from_public_key(key) == *self
    }

    /// A short human-readable prefix used in logs and peer names.
    pub fn short(&self) -> String {
        hex_encode(&self.0[..4])
    }
}

impl std::fmt::Debug for Cbid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cbid({}…)", self.short())
    }
}

impl std::fmt::Display for Cbid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_urn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use crate::rsa::RsaKeyPair;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        RsaKeyPair::generate(&mut rng, 512).unwrap()
    }

    #[test]
    fn cbid_is_deterministic_for_a_key() {
        let kp = keypair(1);
        assert_eq!(Cbid::from_public_key(&kp.public), Cbid::from_public_key(&kp.public));
    }

    #[test]
    fn different_keys_have_different_cbids() {
        let a = keypair(1);
        let b = keypair(2);
        assert_ne!(Cbid::from_public_key(&a.public), Cbid::from_public_key(&b.public));
    }

    #[test]
    fn matches_key_detects_substitution() {
        let a = keypair(1);
        let b = keypair(2);
        let id = Cbid::from_public_key(&a.public);
        assert!(id.matches_key(&a.public));
        assert!(!id.matches_key(&b.public));
    }

    #[test]
    fn urn_roundtrip() {
        let kp = keypair(3);
        let id = Cbid::from_public_key(&kp.public);
        let urn = id.to_urn();
        assert!(urn.starts_with("urn:jxta:cbid:"));
        assert_eq!(Cbid::from_urn(&urn), Some(id));
    }

    #[test]
    fn urn_parsing_rejects_malformed_input() {
        assert_eq!(Cbid::from_urn("urn:jxta:cbid:zz"), None);
        assert_eq!(Cbid::from_urn("urn:other:cbid:00"), None);
        assert_eq!(Cbid::from_urn(""), None);
        let bad_hex = format!("urn:jxta:cbid:{}", "zz".repeat(CBID_LEN));
        assert_eq!(Cbid::from_urn(&bad_hex), None);
    }

    #[test]
    fn display_and_debug_are_compact() {
        let id = Cbid::from_bytes([0xab; CBID_LEN]);
        assert!(format!("{id}").contains("abab"));
        assert!(format!("{id:?}").starts_with("Cbid("));
        assert_eq!(id.short().len(), 8);
    }

    #[test]
    fn raw_byte_roundtrip() {
        let bytes = [7u8; CBID_LEN];
        assert_eq!(Cbid::from_bytes(bytes).as_bytes(), &bytes);
    }
}
