//! A deterministic random bit generator built from HMAC-SHA-256.
//!
//! The construction follows NIST SP 800-90A's HMAC_DRBG (without the
//! optional additional-input paths): the internal state is a key `K` and a
//! value `V`; every `generate` call chains `V = HMAC(K, V)` and every reseed
//! or instantiation runs the `update` mixing function.
//!
//! The DRBG implements [`rand::RngCore`], so it can drive prime generation
//! in [`jxta_bigint::prime`], RSA blinding, session-identifier generation and
//! the random challenges of the `secureConnection` primitive.  Seeding it
//! from a fixed value makes whole experiments reproducible, which the
//! benchmark harness relies on.

use crate::hmac::hmac_sha256;
use rand::{CryptoRng, RngCore};

/// HMAC-SHA-256 based deterministic random bit generator.
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    /// Number of `generate` calls since instantiation or the last reseed.
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from arbitrary seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiates the DRBG from a 64-bit seed (convenience for tests and
    /// experiments).
    pub fn from_seed_u64(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes())
    }

    /// Instantiates the DRBG from operating-system entropy.
    pub fn from_os_entropy() -> Self {
        let mut seed = [0u8; 48];
        rand::rngs::OsRng.fill_bytes(&mut seed);
        Self::new(&seed)
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Number of generate calls since the last reseed.
    pub fn reseed_counter(&self) -> u64 {
        self.reseed_counter
    }

    /// The HMAC_DRBG update function.
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut material = Vec::with_capacity(33 + provided.map_or(0, |p| p.len()));
        material.extend_from_slice(&self.value);
        material.push(0x00);
        if let Some(p) = provided {
            material.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &material);
        self.value = hmac_sha256(&self.key, &self.value);

        if let Some(p) = provided {
            let mut material = Vec::with_capacity(33 + p.len());
            material.extend_from_slice(&self.value);
            material.push(0x01);
            material.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &material);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut offset = 0;
        while offset < out.len() {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (out.len() - offset).min(self.value.len());
            out[offset..offset + take].copy_from_slice(&self.value[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Returns `len` pseudorandom bytes as a vector.
    pub fn generate_vec(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.generate(&mut out);
        out
    }
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.generate(&mut buf);
        u32::from_be_bytes(buf)
    }

    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.generate(&mut buf);
        u64::from_be_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.generate(dest);
        Ok(())
    }
}

impl CryptoRng for HmacDrbg {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::from_seed_u64(42);
        let mut b = HmacDrbg::from_seed_u64(42);
        assert_eq!(a.generate_vec(64), b.generate_vec(64));
        assert_eq!(a.generate_vec(17), b.generate_vec(17));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_seed_u64(1);
        let mut b = HmacDrbg::from_seed_u64(2);
        assert_ne!(a.generate_vec(32), b.generate_vec(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::from_seed_u64(7);
        let first = d.generate_vec(32);
        let second = d.generate_vec(32);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_seed_u64(7);
        let mut b = HmacDrbg::from_seed_u64(7);
        let _ = a.generate_vec(8);
        let _ = b.generate_vec(8);
        b.reseed(b"extra entropy");
        assert_ne!(a.generate_vec(32), b.generate_vec(32));
        assert_eq!(b.reseed_counter(), 2); // reset to 1, then one generate
    }

    #[test]
    fn odd_lengths_are_filled() {
        let mut d = HmacDrbg::from_seed_u64(3);
        for len in [1usize, 5, 31, 32, 33, 100] {
            let v = d.generate_vec(len);
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn output_is_not_all_zero() {
        let mut d = HmacDrbg::from_seed_u64(0);
        let v = d.generate_vec(64);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_interface_works() {
        let mut d = HmacDrbg::from_seed_u64(9);
        let a = d.next_u64();
        let b = d.next_u64();
        assert_ne!(a, b);
        let mut buf = [0u8; 16];
        d.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
    }

    #[test]
    fn os_entropy_instances_differ() {
        let mut a = HmacDrbg::from_os_entropy();
        let mut b = HmacDrbg::from_os_entropy();
        assert_ne!(a.generate_vec(32), b.generate_vec(32));
    }

    #[test]
    fn rough_uniformity_of_byte_values() {
        // Not a statistical test, just a smoke check that the generator is
        // not obviously biased: over 64 KiB every byte value should appear.
        let mut d = HmacDrbg::from_seed_u64(1234);
        let data = d.generate_vec(64 * 1024);
        let mut seen = [false; 256];
        for &b in &data {
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
