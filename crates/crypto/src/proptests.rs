//! Property-based tests spanning the crypto primitives.

use crate::aes::{cbc_decrypt, cbc_encrypt, ctr_process, Aes};
use crate::base64;
use crate::drbg::HmacDrbg;
use crate::envelope::{open_envelope, seal_envelope};
use crate::hmac::hmac_sha256;
use crate::rsa::RsaKeyPair;
use crate::sha2::{sha256, sha512};
use proptest::prelude::*;
use std::sync::OnceLock;

/// RSA key generation is the most expensive part of these tests, so a single
/// 1024-bit pair is shared by every property case.
fn shared_keypair() -> &'static RsaKeyPair {
    static KP: OnceLock<RsaKeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = HmacDrbg::from_seed_u64(0x9999_5eed);
        RsaKeyPair::generate(&mut rng, 1024).expect("keygen")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(base64::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn base64_output_alphabet(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let encoded = base64::encode(&data);
        prop_assert!(encoded.chars().all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '/' || c == '='));
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut flipped = data.clone();
        if !flipped.is_empty() {
            flipped[0] ^= 1;
            prop_assert_ne!(sha256(&flipped), sha256(&data));
            prop_assert_ne!(sha512(&flipped), sha512(&data));
        }
    }

    #[test]
    fn hmac_keys_partition_message_space(
        key1 in proptest::collection::vec(any::<u8>(), 1..64),
        key2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if key1 != key2 {
            prop_assert_ne!(hmac_sha256(&key1, &msg), hmac_sha256(&key2, &msg));
        } else {
            prop_assert_eq!(hmac_sha256(&key1, &msg), hmac_sha256(&key2, &msg));
        }
    }

    #[test]
    fn aes_ctr_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new(&key).unwrap();
        let mut buf = data.clone();
        ctr_process(&aes, &nonce, &mut buf);
        ctr_process(&aes, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aes_cbc_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        iv in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let aes = Aes::new(&key).unwrap();
        let ct = cbc_encrypt(&aes, &iv, &data);
        prop_assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), data);
    }

    #[test]
    fn rsa_sign_verify_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let kp = shared_keypair();
        let sig = kp.private.sign(&msg).unwrap();
        prop_assert!(kp.public.verify(&msg, &sig).is_ok());
        // A different message never verifies.
        let mut other = msg.clone();
        other.push(0x42);
        prop_assert!(kp.public.verify(&other, &sig).is_err());
    }

    #[test]
    fn rsa_pkcs1_encrypt_decrypt_roundtrip(
        msg in proptest::collection::vec(any::<u8>(), 0..100),
        seed in any::<u64>(),
    ) {
        let kp = shared_keypair();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = kp.public.encrypt_pkcs1_v15(&mut rng, &msg).unwrap();
        prop_assert_eq!(kp.private.decrypt_pkcs1_v15(&ct).unwrap(), msg);
    }

    #[test]
    fn rsa_oaep_encrypt_decrypt_roundtrip(
        msg in proptest::collection::vec(any::<u8>(), 0..60),
        seed in any::<u64>(),
    ) {
        let kp = shared_keypair();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = kp.public.encrypt_oaep(&mut rng, &msg).unwrap();
        prop_assert_eq!(kp.private.decrypt_oaep(&ct).unwrap(), msg);
    }

    #[test]
    fn envelope_roundtrip_and_serialisation(
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
        seed in any::<u64>(),
    ) {
        let kp = shared_keypair();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let env = seal_envelope(&mut rng, &kp.public, &msg).unwrap();
        prop_assert_eq!(open_envelope(&kp.private, &env).unwrap(), msg.clone());
        let parsed = crate::envelope::Envelope::from_bytes(&env.to_bytes()).unwrap();
        prop_assert_eq!(open_envelope(&kp.private, &parsed).unwrap(), msg);
    }

    #[test]
    fn envelope_tampering_always_detected(
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let kp = shared_keypair();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let env = seal_envelope(&mut rng, &kp.public, &msg).unwrap();
        let mut bytes = env.to_bytes();
        // Flip one bit somewhere in the serialised envelope (skipping the
        // 4-byte magic so parsing still succeeds structurally or fails —
        // either way the plaintext must never silently change).
        let idx = 4 + (flip_byte as usize % (bytes.len() - 4));
        bytes[idx] ^= 0x01;
        if let Ok(tampered) = crate::envelope::Envelope::from_bytes(&bytes) {
            if let Ok(pt) = open_envelope(&kp.private, &tampered) {
                prop_assert_ne!(pt, msg);
            }
        }
    }

    #[test]
    fn drbg_streams_differ_across_seeds(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let mut a = HmacDrbg::from_seed_u64(seed1);
        let mut b = HmacDrbg::from_seed_u64(seed2);
        let va = a.generate_vec(32);
        let vb = b.generate_vec(32);
        if seed1 == seed2 {
            prop_assert_eq!(va, vb);
        } else {
            prop_assert_ne!(va, vb);
        }
    }
}
