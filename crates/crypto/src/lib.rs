//! From-scratch cryptographic primitives for the JXTA-Overlay security stack.
//!
//! The paper's security extension ("A Security-aware Approach to JXTA-Overlay
//! Primitives", ICPP Workshops 2009) relies on the Java Cryptographic
//! Extension for its building blocks.  This crate provides the equivalent
//! primitives implemented from scratch on top of [`jxta_bigint`]:
//!
//! * [`sha2`] — SHA-256 and SHA-512 message digests.
//! * [`hmac`] — HMAC keyed message authentication (RFC 2104), used for
//!   integrity of symmetric envelopes.
//! * [`aes`] — the AES-128/256 block cipher with CTR and CBC/PKCS#7 modes,
//!   used as the data-encapsulation half of wrapped-key encryption.
//! * [`base64`] — RFC 3548/4648 Base64, used when embedding binary values in
//!   XML advertisements.
//! * [`drbg`] — a deterministic HMAC-DRBG (NIST SP 800-90A style) random bit
//!   generator; every randomised operation takes an explicit RNG so tests and
//!   experiments are reproducible.
//! * [`rsa`] — RSA key generation, PKCS#1 v1.5 signatures, and both
//!   PKCS#1 v1.5 and OAEP encryption.
//! * [`envelope`] — the hybrid *wrapped-key* encryption scheme
//!   (`E_PK(x)` in the paper's notation): an ephemeral AES-256 key encrypts
//!   the payload, the AES key is wrapped under the recipient's RSA public
//!   key, and an HMAC binds the pieces together.
//! * [`cbid`] — Crypto-Based IDentifiers: peer identifiers derived from the
//!   hash of a public key, which is what makes advertisement-based credential
//!   distribution self-certifying.
//! * [`sigcache`] — a bounded cache of successful RSA signature
//!   verifications keyed by `(key id, payload digest)`, so bytes verified
//!   once (re-published advertisements, gossiped snapshots, revocation
//!   lists) skip the modular exponentiation on every later sighting.
//!
//! All implementations are pure safe Rust, avoid allocation in their inner
//! loops, and are covered by unit tests with published test vectors plus
//! property-based round-trip tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod base64;
pub mod cbid;
pub mod drbg;
pub mod envelope;
pub mod error;
pub mod hmac;
pub mod rsa;
pub mod sha2;
pub mod sigcache;

pub use cbid::Cbid;
pub use drbg::HmacDrbg;
pub use envelope::{open_envelope, seal_envelope, Envelope};
pub use error::CryptoError;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha2::{sha256, sha512, Sha256, Sha512};
pub use sigcache::{SigCacheStats, VerifiedSigCache};

#[cfg(test)]
mod proptests;
