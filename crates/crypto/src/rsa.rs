//! RSA public-key cryptography: key generation, PKCS#1 v1.5 signatures and
//! both PKCS#1 v1.5 and OAEP encryption.
//!
//! The paper's notation maps onto this module as follows:
//!
//! * `SK_i` / `PK_i` — [`RsaPrivateKey`] / [`RsaPublicKey`] of peer *i*.
//! * `S_SK_i(x)` — [`RsaPrivateKey::sign`] (RSASSA-PKCS1-v1_5 over SHA-256).
//! * `E_PK_i(x)` — the wrapped-key scheme in [`crate::envelope`], whose key
//!   wrapping uses [`RsaPublicKey::encrypt_oaep`] ("such as the one defined
//!   in PKCS#1", reference \[19\] of the paper).
//!
//! Private-key operations use the Chinese Remainder Theorem for a ~4×
//! speed-up, which matters because broker login handling and secure message
//! decryption are the hot paths of the reproduced experiments.

use crate::error::CryptoError;
use crate::sha2::{sha256, SHA256_OUTPUT_LEN};
use jxta_bigint::modular::{mod_inverse, mod_pow};
use jxta_bigint::{prime, BigUint};
use rand::RngCore;

/// The conventional RSA public exponent (F4 = 65537).
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// Minimum modulus size accepted by key generation.  512-bit keys are far
/// too small for real deployments but keep the unit-test suite fast; the
/// benchmarks use 1024 and 2048 bits as the paper's JXTA implementation did.
pub const MIN_KEY_BITS: usize = 512;

/// DER prefix of the `DigestInfo` structure for SHA-256
/// (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
    0x05, 0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT acceleration parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

/// A matched RSA key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKeyPair {
    /// The public half (distributed inside credentials and advertisements).
    pub public: RsaPublicKey,
    /// The private half (never leaves the owning peer).
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of exactly `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyTooSmall`] if `bits < MIN_KEY_BITS`.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> Result<Self, CryptoError> {
        if bits < MIN_KEY_BITS {
            return Err(CryptoError::KeyTooSmall {
                bits,
                required_bits: MIN_KEY_BITS,
            });
        }
        let e = BigUint::from(PUBLIC_EXPONENT);
        loop {
            let p = prime::generate_safe_prime_candidate(rng, bits / 2, &e);
            let q = loop {
                let q = prime::generate_safe_prime_candidate(rng, bits - bits / 2, &e);
                if q != p {
                    break q;
                }
            };
            let n = &p * &q;
            if n.bits() != bits {
                continue;
            }
            let p_minus_1 = &p - BigUint::one();
            let q_minus_1 = &q - BigUint::one();
            let phi = &p_minus_1 * &q_minus_1;
            let d = match mod_inverse(&e, &phi) {
                Some(d) => d,
                None => continue,
            };
            let dp = &d % &p_minus_1;
            let dq = &d % &q_minus_1;
            let qinv = match mod_inverse(&q, &p) {
                Some(qinv) => qinv,
                None => continue,
            };
            let public = RsaPublicKey { n, e: e.clone() };
            let private = RsaPrivateKey {
                public: public.clone(),
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
            return Ok(RsaKeyPair { public, private });
        }
    }
}

impl RsaPublicKey {
    /// Constructs a public key from raw modulus and exponent.
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in whole bytes (`k` in PKCS#1 terms).
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bits()
    }

    /// Serialises the key as a tagged, length-prefixed byte string.
    ///
    /// Layout: `"JXPK"` magic, 4-byte big-endian length of `n`, `n`,
    /// 4-byte big-endian length of `e`, `e`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + 8 + n.len() + e.len());
        out.extend_from_slice(b"JXPK");
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses a key serialised with [`RsaPublicKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = |what: &str| CryptoError::Malformed(format!("public key: {what}"));
        if bytes.len() < 8 || &bytes[..4] != b"JXPK" {
            return Err(err("missing JXPK header"));
        }
        let mut offset = 4usize;
        let read_chunk = |offset: &mut usize| -> Result<Vec<u8>, CryptoError> {
            if bytes.len() < *offset + 4 {
                return Err(err("truncated length field"));
            }
            let len = u32::from_be_bytes(bytes[*offset..*offset + 4].try_into().unwrap()) as usize;
            *offset += 4;
            if bytes.len() < *offset + len {
                return Err(err("truncated value"));
            }
            let chunk = bytes[*offset..*offset + len].to_vec();
            *offset += len;
            Ok(chunk)
        };
        let n = read_chunk(&mut offset)?;
        let e = read_chunk(&mut offset)?;
        if offset != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(RsaPublicKey {
            n: BigUint::from_bytes_be(&n),
            e: BigUint::from_bytes_be(&e),
        })
    }

    /// Raw RSA public operation `m^e mod n`.
    fn raw_encrypt(&self, m: &BigUint) -> BigUint {
        mod_pow(m, &self.e, &self.n)
    }

    /// Verifies an RSASSA-PKCS1-v1_5 SHA-256 signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::InvalidCiphertextLength {
                found: signature.len(),
                expected: k,
            });
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::SignatureMismatch);
        }
        let em = self.raw_encrypt(&s).to_bytes_be_padded(k);
        let expected = emsa_pkcs1_v15_encode(message, k)?;
        if crate::hmac::constant_time_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::SignatureMismatch)
        }
    }

    /// Encrypts `message` with RSAES-PKCS1-v1_5.
    pub fn encrypt_pkcs1_v15<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        message: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if message.len() + 11 > k {
            return Err(CryptoError::MessageTooLong {
                message_len: message.len(),
                max_len: k - 11,
            });
        }
        // EM = 0x00 || 0x02 || PS || 0x00 || M, PS non-zero random bytes.
        let ps_len = k - message.len() - 3;
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..ps_len {
            loop {
                let mut b = [0u8; 1];
                rng.fill_bytes(&mut b);
                if b[0] != 0 {
                    em.push(b[0]);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(message);
        let m = BigUint::from_bytes_be(&em);
        Ok(self.raw_encrypt(&m).to_bytes_be_padded(k))
    }

    /// Encrypts `message` with RSAES-OAEP (SHA-256, MGF1-SHA-256, empty label).
    pub fn encrypt_oaep<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        message: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        let h_len = SHA256_OUTPUT_LEN;
        if k < 2 * h_len + 2 {
            return Err(CryptoError::KeyTooSmall {
                bits: self.bits(),
                required_bits: (2 * h_len + 2) * 8,
            });
        }
        let max_len = k - 2 * h_len - 2;
        if message.len() > max_len {
            return Err(CryptoError::MessageTooLong {
                message_len: message.len(),
                max_len,
            });
        }
        // DB = lHash || PS || 0x01 || M
        let l_hash = sha256(b"");
        let mut db = Vec::with_capacity(k - h_len - 1);
        db.extend_from_slice(&l_hash);
        db.extend(std::iter::repeat_n(0u8, k - message.len() - 2 * h_len - 2));
        db.push(0x01);
        db.extend_from_slice(message);

        let mut seed = vec![0u8; h_len];
        rng.fill_bytes(&mut seed);

        let db_mask = mgf1(&seed, db.len());
        for (b, m) in db.iter_mut().zip(db_mask.iter()) {
            *b ^= m;
        }
        let seed_mask = mgf1(&db, h_len);
        for (s, m) in seed.iter_mut().zip(seed_mask.iter()) {
            *s ^= m;
        }

        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.extend_from_slice(&seed);
        em.extend_from_slice(&db);
        let m = BigUint::from_bytes_be(&em);
        Ok(self.raw_encrypt(&m).to_bytes_be_padded(k))
    }
}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d` (exposed for tests and diagnostics only).
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Raw RSA private operation `c^d mod n`, accelerated with the CRT.
    fn raw_decrypt(&self, c: &BigUint) -> BigUint {
        // m1 = c^dp mod p, m2 = c^dq mod q
        let m1 = mod_pow(&(c % &self.p), &self.dp, &self.p);
        let m2 = mod_pow(&(c % &self.q), &self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let diff = if m1 >= m2 {
            &m1 - &m2
        } else {
            &self.p - ((&m2 - &m1) % &self.p)
        };
        let h = (&self.qinv * diff) % &self.p;
        // m = m2 + h * q
        &m2 + &h * &self.q
    }

    /// Signs `message` with RSASSA-PKCS1-v1_5 over SHA-256.
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15_encode(message, k)?;
        let m = BigUint::from_bytes_be(&em);
        Ok(self.raw_decrypt(&m).to_bytes_be_padded(k))
    }

    /// Decrypts an RSAES-PKCS1-v1_5 ciphertext.
    pub fn decrypt_pkcs1_v15(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidCiphertextLength {
                found: ciphertext.len(),
                expected: k,
            });
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let em = self.raw_decrypt(&c).to_bytes_be_padded(k);
        // EM = 0x00 || 0x02 || PS || 0x00 || M with |PS| >= 8.
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            return Err(CryptoError::InvalidPadding);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Decrypts an RSAES-OAEP ciphertext (SHA-256, MGF1-SHA-256, empty label).
    pub fn decrypt_oaep(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let h_len = SHA256_OUTPUT_LEN;
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidCiphertextLength {
                found: ciphertext.len(),
                expected: k,
            });
        }
        if k < 2 * h_len + 2 {
            return Err(CryptoError::InvalidPadding);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let em = self.raw_decrypt(&c).to_bytes_be_padded(k);

        let y = em[0];
        let mut seed = em[1..1 + h_len].to_vec();
        let mut db = em[1 + h_len..].to_vec();

        let seed_mask = mgf1(&db, h_len);
        for (s, m) in seed.iter_mut().zip(seed_mask.iter()) {
            *s ^= m;
        }
        let db_mask = mgf1(&seed, db.len());
        for (b, m) in db.iter_mut().zip(db_mask.iter()) {
            *b ^= m;
        }

        let l_hash = sha256(b"");
        let l_hash_ok = crate::hmac::constant_time_eq(&db[..h_len], &l_hash);
        // Find the 0x01 separator after the padding string.
        let mut sep_index = None;
        for (i, &b) in db.iter().enumerate().skip(h_len) {
            if b == 0x01 {
                sep_index = Some(i);
                break;
            }
            if b != 0x00 {
                break;
            }
        }
        match (y, l_hash_ok, sep_index) {
            (0, true, Some(i)) => Ok(db[i + 1..].to_vec()),
            _ => Err(CryptoError::InvalidPadding),
        }
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `k` bytes.
fn emsa_pkcs1_v15_encode(message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = sha256(message);
    let t_len = SHA256_DIGEST_INFO_PREFIX.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::KeyTooSmall {
            bits: k * 8,
            required_bits: (t_len + 11) * 8,
        });
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xffu8, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO_PREFIX);
    em.extend_from_slice(&digest);
    Ok(em)
}

/// MGF1 mask generation function over SHA-256 (RFC 8017 §B.2.1).
fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter: u32 = 0;
    while out.len() < len {
        let mut h = crate::sha2::Sha256::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use jxta_bigint::rng as big_rng;

    /// A 512-bit key keeps the test suite fast; generated once per test run.
    fn test_keypair() -> RsaKeyPair {
        let mut rng = HmacDrbg::from_seed_u64(0xA11CE);
        RsaKeyPair::generate(&mut rng, 512).unwrap()
    }

    #[test]
    fn keygen_produces_requested_modulus_size() {
        let kp = test_keypair();
        assert_eq!(kp.public.bits(), 512);
        assert_eq!(kp.public.modulus_len(), 64);
        assert_eq!(kp.public.exponent(), &BigUint::from(PUBLIC_EXPONENT));
    }

    #[test]
    fn keygen_rejects_tiny_keys() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        assert!(matches!(
            RsaKeyPair::generate(&mut rng, 128),
            Err(CryptoError::KeyTooSmall { .. })
        ));
    }

    #[test]
    fn keygen_private_exponent_consistency() {
        // d * e ≡ 1 (mod lcm(p-1, q-1)) implies raw ops invert each other.
        let kp = test_keypair();
        let m = BigUint::from(0x1234_5678_9abc_def0u64);
        let c = kp.public.raw_encrypt(&m);
        assert_eq!(kp.private.raw_decrypt(&c), m);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = test_keypair();
        let message = b"JXTA-Overlay secure primitive payload";
        let sig = kp.private.sign(message).unwrap();
        assert_eq!(sig.len(), kp.public.modulus_len());
        kp.public.verify(message, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = test_keypair();
        let sig = kp.private.sign(b"original message").unwrap();
        assert_eq!(
            kp.public.verify(b"tampered message", &sig),
            Err(CryptoError::SignatureMismatch)
        );
    }

    #[test]
    fn verify_rejects_corrupted_signature() {
        let kp = test_keypair();
        let mut sig = kp.private.sign(b"message").unwrap();
        sig[10] ^= 0x01;
        assert!(kp.public.verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(0xB0B);
        let kp2 = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let sig = kp1.private.sign(b"message").unwrap();
        assert!(kp2.public.verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let kp = test_keypair();
        assert!(matches!(
            kp.public.verify(b"m", &[0u8; 10]),
            Err(CryptoError::InvalidCiphertextLength { .. })
        ));
    }

    #[test]
    fn pkcs1_v15_encrypt_decrypt_roundtrip() {
        let kp = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(99);
        for len in [0usize, 1, 16, 32, 53] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = kp.public.encrypt_pkcs1_v15(&mut rng, &msg).unwrap();
            assert_eq!(ct.len(), kp.public.modulus_len());
            assert_eq!(kp.private.decrypt_pkcs1_v15(&ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn pkcs1_v15_rejects_oversized_message() {
        let kp = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(99);
        let msg = vec![0u8; kp.public.modulus_len() - 10];
        assert!(matches!(
            kp.public.encrypt_pkcs1_v15(&mut rng, &msg),
            Err(CryptoError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn pkcs1_v15_decrypt_with_wrong_key_fails() {
        let kp1 = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(0xB0B);
        let kp2 = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let ct = kp1.public.encrypt_pkcs1_v15(&mut rng, b"secret").unwrap();
        match kp2.private.decrypt_pkcs1_v15(&ct) {
            Ok(pt) => assert_ne!(pt, b"secret"),
            Err(e) => assert!(matches!(
                e,
                CryptoError::InvalidPadding | CryptoError::InvalidCiphertextLength { .. }
            )),
        }
    }

    #[test]
    fn oaep_encrypt_decrypt_roundtrip() {
        let kp = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(7);
        // 512-bit key => max message = 64 - 64 - 2 = wait, 64 - 2*32 - 2 = -2,
        // so OAEP needs a bigger key; use a 1024-bit key here.
        let mut rng2 = HmacDrbg::from_seed_u64(0xCAFE);
        let kp1024 = RsaKeyPair::generate(&mut rng2, 1024).unwrap();
        for len in [0usize, 1, 32, 62] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let ct = kp1024.public.encrypt_oaep(&mut rng, &msg).unwrap();
            assert_eq!(ct.len(), kp1024.public.modulus_len());
            assert_eq!(kp1024.private.decrypt_oaep(&ct).unwrap(), msg, "len {len}");
        }
        // And the 512-bit key is correctly rejected for OAEP.
        assert!(matches!(
            kp.public.encrypt_oaep(&mut rng, b"x"),
            Err(CryptoError::KeyTooSmall { .. })
        ));
    }

    #[test]
    fn oaep_detects_tampering() {
        let mut rng = HmacDrbg::from_seed_u64(0xCAFE);
        let kp = RsaKeyPair::generate(&mut rng, 1024).unwrap();
        let mut ct = kp.public.encrypt_oaep(&mut rng, b"attack at dawn").unwrap();
        ct[20] ^= 0xff;
        assert!(kp.private.decrypt_oaep(&ct).is_err());
    }

    #[test]
    fn oaep_ciphertexts_are_randomised() {
        let mut rng = HmacDrbg::from_seed_u64(0xCAFE);
        let kp = RsaKeyPair::generate(&mut rng, 1024).unwrap();
        let c1 = kp.public.encrypt_oaep(&mut rng, b"same message").unwrap();
        let c2 = kp.public.encrypt_oaep(&mut rng, b"same message").unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn public_key_serialisation_roundtrip() {
        let kp = test_keypair();
        let bytes = kp.public.to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, kp.public);
    }

    #[test]
    fn public_key_parse_rejects_garbage() {
        assert!(RsaPublicKey::from_bytes(b"").is_err());
        assert!(RsaPublicKey::from_bytes(b"JXPK").is_err());
        assert!(RsaPublicKey::from_bytes(b"NOPE\x00\x00\x00\x01\x05\x00\x00\x00\x01\x03").is_err());
        // Trailing junk after a valid key.
        let kp = test_keypair();
        let mut bytes = kp.public.to_bytes();
        bytes.push(0xaa);
        assert!(RsaPublicKey::from_bytes(&bytes).is_err());
    }

    #[test]
    fn mgf1_known_properties() {
        // Deterministic, length-exact, and prefix-consistent.
        let a = mgf1(b"seed", 40);
        let b = mgf1(b"seed", 40);
        let c = mgf1(b"seed", 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert_eq!(&a[..20], &c[..]);
        assert_ne!(mgf1(b"seed", 32), mgf1(b"seeds", 32));
    }

    #[test]
    fn emsa_encoding_structure() {
        let em = emsa_pkcs1_v15_encode(b"hello", 64).unwrap();
        assert_eq!(em.len(), 64);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        assert!(em[2..].contains(&0x00));
        // Too-small target length is rejected.
        assert!(emsa_pkcs1_v15_encode(b"hello", 32).is_err());
    }

    #[test]
    fn sign_is_deterministic() {
        let kp = test_keypair();
        assert_eq!(kp.private.sign(b"m").unwrap(), kp.private.sign(b"m").unwrap());
    }

    #[test]
    fn rng_helper_integration() {
        // random_below used by blinding-style operations stays below modulus.
        let kp = test_keypair();
        let mut rng = HmacDrbg::from_seed_u64(5);
        for _ in 0..10 {
            let r = big_rng::random_below(&mut rng, kp.public.modulus());
            assert!(&r < kp.public.modulus());
        }
    }
}
