//! Error type shared by the higher-level cryptographic operations.

use crate::aes::AesError;
use crate::base64::Base64Error;

/// Errors produced by RSA, envelope and credential-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The message is too long for the chosen RSA padding mode and key size.
    MessageTooLong {
        /// Length of the message that was supplied.
        message_len: usize,
        /// Maximum length supported by the key/padding combination.
        max_len: usize,
    },
    /// An RSA ciphertext or signature does not match the key's modulus size.
    InvalidCiphertextLength {
        /// Length that was supplied.
        found: usize,
        /// Length required by the key.
        expected: usize,
    },
    /// Decryption succeeded arithmetically but the padding is malformed
    /// (wrong key, corrupted ciphertext or forged message).
    InvalidPadding,
    /// A signature failed to verify.
    SignatureMismatch,
    /// A serialised key, envelope or credential could not be parsed.
    Malformed(String),
    /// The symmetric layer of an envelope failed (AES/CBC errors).
    Symmetric(AesError),
    /// The integrity tag of an envelope did not verify.
    MacMismatch,
    /// Base64 decoding failed while parsing an encoded structure.
    Base64(Base64Error),
    /// A key is too small for the requested operation.
    KeyTooSmall {
        /// Modulus size in bits.
        bits: usize,
        /// Minimum modulus size in bits required by the operation.
        required_bits: usize,
    },
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::MessageTooLong { message_len, max_len } => write!(
                f,
                "message of {message_len} bytes exceeds the maximum of {max_len} bytes for this key"
            ),
            CryptoError::InvalidCiphertextLength { found, expected } => write!(
                f,
                "ciphertext/signature length {found} does not match the key's modulus length {expected}"
            ),
            CryptoError::InvalidPadding => write!(f, "invalid padding after RSA decryption"),
            CryptoError::SignatureMismatch => write!(f, "signature verification failed"),
            CryptoError::Malformed(what) => write!(f, "malformed structure: {what}"),
            CryptoError::Symmetric(e) => write!(f, "symmetric cipher error: {e}"),
            CryptoError::MacMismatch => write!(f, "envelope MAC verification failed"),
            CryptoError::Base64(e) => write!(f, "base64 error: {e}"),
            CryptoError::KeyTooSmall { bits, required_bits } => write!(
                f,
                "RSA key of {bits} bits is too small; at least {required_bits} bits are required"
            ),
        }
    }
}

impl std::error::Error for CryptoError {}

impl From<AesError> for CryptoError {
    fn from(e: AesError) -> Self {
        CryptoError::Symmetric(e)
    }
}

impl From<Base64Error> for CryptoError {
    fn from(e: Base64Error) -> Self {
        CryptoError::Base64(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CryptoError, &str)> = vec![
            (
                CryptoError::MessageTooLong { message_len: 100, max_len: 53 },
                "exceeds",
            ),
            (
                CryptoError::InvalidCiphertextLength { found: 10, expected: 128 },
                "modulus length",
            ),
            (CryptoError::InvalidPadding, "padding"),
            (CryptoError::SignatureMismatch, "verification failed"),
            (CryptoError::Malformed("credential".into()), "credential"),
            (CryptoError::MacMismatch, "MAC"),
            (
                CryptoError::KeyTooSmall { bits: 256, required_bits: 512 },
                "too small",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn conversions_from_sublayer_errors() {
        let e: CryptoError = AesError::InvalidPadding.into();
        assert!(matches!(e, CryptoError::Symmetric(_)));
        let e: CryptoError = Base64Error::InvalidLength(3).into();
        assert!(matches!(e, CryptoError::Base64(_)));
    }
}
