//! An e-learning scenario (the application domain that motivated
//! JXTA-Overlay): a teacher and students organised into overlapping course
//! groups, secure group announcements and private questions.
//!
//! Run with: `cargo run --example elearning_groups`

use jxta_overlay::GroupId;
use jxta_overlay_secure::setup::SecureNetworkBuilder;

pub fn main() {
    // The administrator registers the teacher and the students; group
    // membership is part of the user configuration held in the central
    // database (only brokers read it).
    let mut setup = SecureNetworkBuilder::new(0xED0)
        .with_user("prof-barolli", "teacher-pw", &["math-101", "networks-202"])
        .with_user("keita", "student-pw-1", &["math-101", "networks-202"])
        .with_user("joan", "student-pw-2", &["math-101"])
        .with_user("fatos", "student-pw-3", &["networks-202"])
        .build();
    let broker = setup.broker_id();

    let mut teacher = setup.secure_client("teacher-workstation");
    let mut keita = setup.secure_client("keita-laptop");
    let mut joan = setup.secure_client("joan-laptop");
    let mut fatos = setup.secure_client("fatos-laptop");

    teacher.secure_join(broker, "prof-barolli", "teacher-pw").unwrap();
    keita.secure_join(broker, "keita", "student-pw-1").unwrap();
    joan.secure_join(broker, "joan", "student-pw-2").unwrap();
    fatos.secure_join(broker, "fatos", "student-pw-3").unwrap();
    println!("teacher groups: {:?}", teacher.inner().groups());

    let math = GroupId::new("math-101");
    let networks = GroupId::new("networks-202");
    for (client, groups) in [
        (&mut teacher, vec![&math, &networks]),
        (&mut keita, vec![&math, &networks]),
        (&mut joan, vec![&math]),
        (&mut fatos, vec![&networks]),
    ] {
        for group in groups {
            client.publish_secure_pipe(group).unwrap();
        }
    }

    // Group announcement: reaches only the members of math-101.
    let (sent, timing) = teacher
        .secure_msg_peer_group(&math, "math-101: the midterm moves to tuesday")
        .unwrap();
    println!(
        "teacher announced to {sent} math-101 members in {:.2} ms",
        timing.total().as_secs_f64() * 1e3
    );

    for (name, student) in [("keita", &mut keita), ("joan", &mut joan), ("fatos", &mut fatos)] {
        let received = student.receive_secure_messages().unwrap();
        println!("{name} received {} announcement(s)", received.len());
        if name == "fatos" {
            assert!(received.is_empty(), "fatos is not in math-101");
        } else {
            assert_eq!(received.len(), 1);
            assert_eq!(received[0].sender_username, "prof-barolli");
        }
    }

    // Private question from a student to the teacher — encrypted end-to-end.
    keita
        .secure_msg_peer(&networks, teacher.id(), "could you re-explain JXTA pipes?")
        .unwrap();
    let questions = teacher.receive_secure_messages().unwrap();
    println!(
        "teacher received a private question from {}: {:?}",
        questions[0].sender_username, questions[0].text
    );

    // A parallel announcement to the larger networks-202 group.
    let (sent, timing) = teacher
        .secure_msg_peer_group_parallel(&networks, "networks-202: lab session uploaded")
        .unwrap();
    println!(
        "parallel fan-out to {sent} networks-202 members took {:.2} ms",
        timing.total().as_secs_f64() * 1e3
    );
    println!("done.");
}
