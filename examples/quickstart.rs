//! Quickstart: set up a secured JXTA-Overlay network, join it securely and
//! exchange one protected message.
//!
//! Run with: `cargo run --example quickstart`

use jxta_overlay::GroupId;
use jxta_overlay_secure::setup::SecureNetworkBuilder;

pub fn main() {
    // 1. System setup (paper §4.1): administrator, broker with an
    //    admin-issued credential, user database — all behind one builder.
    let mut setup = SecureNetworkBuilder::new(0xC0FFEE)
        .with_user("alice", "alice-pw", &["demo"])
        .with_user("bob", "bob-pw", &["demo"])
        .with_broker_name("demo-broker")
        .build();
    println!("broker is online at {}", setup.broker_id());

    // 2. Client peers generate their key pairs at boot time and are
    //    provisioned with the administrator credential.
    let mut alice = setup.secure_client("alice-laptop");
    let mut bob = setup.secure_client("bob-laptop");

    // 3. Secure join: secureConnection authenticates the broker via
    //    challenge/response, secureLogin authenticates the user over an
    //    encrypted, replay-protected channel and returns a credential.
    let timing = alice
        .secure_join(setup.broker_id(), "alice", "alice-pw")
        .expect("alice join");
    println!(
        "alice joined securely in {:.2} ms (credential issued to {:?})",
        timing.total().as_secs_f64() * 1e3,
        alice.credential().unwrap().subject_name
    );
    bob.secure_join(setup.broker_id(), "bob", "bob-pw").expect("bob join");

    // 4. Publish signed pipe advertisements (this is also how public keys are
    //    distributed) and exchange a protected message.
    let group = GroupId::new("demo");
    alice.publish_secure_pipe(&group).expect("publish");
    bob.publish_secure_pipe(&group).expect("publish");

    alice
        .secure_msg_peer(&group, bob.id(), "hello bob — nobody else can read this")
        .expect("send");
    let received = bob.receive_secure_messages().expect("receive");
    for message in &received {
        println!(
            "bob received from {} ({}): {:?}",
            message.sender_username, message.from, message.text
        );
    }
    assert_eq!(received.len(), 1);
    println!("done.");
}
