//! File sharing with signed advertisements: peers publish the files they
//! share; the advertisements are signed and carry the owner's credential, so
//! group members can tell genuine file indexes from forged ones.
//!
//! Run with: `cargo run --example file_sharing`

use jxta_crypto::sha2::{hex_encode, sha256};
use jxta_overlay::advertisement::{Advertisement, FileAdvertisement, FileEntry};
use jxta_overlay::GroupId;
use jxta_overlay_secure::signed_adv::{sign_advertisement, validate_signed_advertisement};
use jxta_overlay_secure::setup::SecureNetworkBuilder;

pub fn main() {
    let mut setup = SecureNetworkBuilder::new(0xF11E)
        .with_user("alice", "pw-a", &["downloads"])
        .with_user("bob", "pw-b", &["downloads"])
        .build();
    let broker = setup.broker_id();
    let group = GroupId::new("downloads");

    let mut alice = setup.secure_client("alice-desktop");
    let mut bob = setup.secure_client("bob-desktop");
    alice.secure_join(broker, "alice", "pw-a").unwrap();
    bob.secure_join(broker, "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();

    // Alice shares two "files" (simulated contents) and signs the file
    // advertisement with her broker-issued credential.
    let files: Vec<(&str, Vec<u8>)> = vec![
        ("lecture-notes.pdf", vec![0x25; 48 * 1024]),
        ("assignment-1.tar.gz", vec![0x1f; 300 * 1024]),
    ];
    let entries: Vec<FileEntry> = files
        .iter()
        .map(|(name, contents)| FileEntry {
            name: name.to_string(),
            size: contents.len() as u64,
            digest: hex_encode(&sha256(contents)),
        })
        .collect();
    let advertisement = FileAdvertisement {
        owner: alice.id(),
        group: group.clone(),
        entries,
    };
    let mut element = advertisement.to_element();
    sign_advertisement(
        &mut element,
        alice.identity(),
        alice.credential().unwrap(),
    )
    .unwrap();
    let signed_xml = element.to_xml();
    alice
        .inner_mut()
        .publish_advertisement(&group, FileAdvertisement::DOC_TYPE, &signed_xml)
        .unwrap();
    println!("alice published a signed index of {} files", advertisement.entries.len());

    // Bob looks the index up through the broker and validates it before
    // trusting any of the listed digests.
    let results = bob
        .inner_mut()
        .lookup_advertisements(&group, FileAdvertisement::DOC_TYPE, Some(alice.id()))
        .unwrap();
    let validated = validate_signed_advertisement::<FileAdvertisement, _>(
        &results[0],
        alice.id(),
        bob.trust(),
        |adv| adv.owner,
    )
    .expect("the signed file index validates");
    println!(
        "bob validated the index published by {:?}:",
        validated.credential.subject_name
    );
    for entry in &validated.advertisement.entries {
        println!("  {:>24}  {:>8} bytes  sha256:{}…", entry.name, entry.size, &entry.digest[..16]);
    }

    // A tampered copy (say, a poisoned digest) is rejected.
    let tampered = results[0].replace(&hex_encode(&sha256(&files[0].1)), &"00".repeat(32));
    let verdict = validate_signed_advertisement::<FileAdvertisement, _>(
        &tampered,
        alice.id(),
        bob.trust(),
        |adv| adv.owner,
    );
    println!("tampered index rejected: {}", verdict.is_err());
    assert!(verdict.is_err());
    println!("done.");
}
