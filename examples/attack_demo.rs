//! Demonstrates the attacks of paper §2.3 against the plain primitives and
//! shows how the secure primitives defeat them.
//!
//! Run with: `cargo run --example attack_demo`

use jxta_overlay::GroupId;
use jxta_overlay_secure::attacks::{Eavesdropper, FakeBroker, RedirectToFakeBroker};
use jxta_overlay_secure::setup::SecureNetworkBuilder;

pub fn main() {
    let mut setup = SecureNetworkBuilder::new(0xA77)
        .with_user("alice", "correct-horse-battery", &["ops"])
        .with_user("bob", "bob-pw", &["ops"])
        .build();
    let broker = setup.broker_id();
    let group = GroupId::new("ops");

    // ------------------------------------------------------------------
    // Threat 1: eavesdropping.
    // ------------------------------------------------------------------
    println!("== eavesdropping ==");
    let spy = Eavesdropper::new();
    setup.network().set_adversary(spy.clone());

    let mut naive = setup.plain_client("naive-client");
    naive.connect(broker).unwrap();
    naive.login("alice", "correct-horse-battery").unwrap();
    println!(
        "plain login: password visible on the wire? {}",
        spy.saw_text("correct-horse-battery")
    );

    let spy2 = Eavesdropper::new();
    setup.network().set_adversary(spy2.clone());
    let mut careful = setup.secure_client("careful-client");
    careful.secure_join(broker, "alice", "correct-horse-battery").unwrap();
    println!(
        "secure login: password visible on the wire? {}",
        spy2.saw_text("correct-horse-battery")
    );
    setup.network().clear_adversary();

    // ------------------------------------------------------------------
    // Threat 2: a fake broker reached via traffic redirection (DNS spoofing).
    // ------------------------------------------------------------------
    println!("\n== fake broker ==");
    let fake = FakeBroker::spawn(setup.network(), 0xBAD, 1024);
    setup
        .network()
        .set_adversary(RedirectToFakeBroker::new(broker, fake.id()));

    let mut victim = setup.plain_client("victim");
    victim.connect(broker).unwrap();
    victim.login("bob", "bob-pw").unwrap();
    println!(
        "plain client believes it is logged in: {}; rogue broker harvested {:?}",
        victim.is_logged_in(),
        fake.harvested_credentials()
    );

    let mut defender = setup.secure_client("defender");
    match defender.secure_connection(broker) {
        Ok(_) => println!("secure client accepted the rogue broker (unexpected!)"),
        Err(err) => println!("secure client rejected the rogue broker: {err}"),
    }
    setup.network().clear_adversary();

    // ------------------------------------------------------------------
    // Threat 3: advertisement forgery by a legitimate user.
    // ------------------------------------------------------------------
    println!("\n== advertisement forgery ==");
    let mut bob = setup.secure_client("bob-client");
    bob.secure_join(broker, "bob", "bob-pw").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    careful.publish_secure_pipe(&group).unwrap();

    // Bob (legitimately credentialed) publishes a pipe advertisement that
    // claims to be Alice's. The plain overlay would index it happily; the
    // secure resolution rejects it when Alice's peers validate it.
    use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
    let forged = PipeAdvertisement {
        owner: careful.id(),
        group: group.clone(),
        name: "fake-alice-inbox".into(),
    };
    let mut element = forged.to_element();
    jxta_overlay_secure::signed_adv::sign_advertisement(
        &mut element,
        bob.identity(),
        bob.credential().unwrap(),
    )
    .unwrap();
    let verdict = jxta_overlay_secure::signed_adv::validate_signed_pipe_advertisement(
        &element.to_xml(),
        careful.id(),
        bob.trust(),
    );
    println!("forged advertisement accepted? {}", verdict.is_ok());
    assert!(verdict.is_err());
    println!("done.");
}
