//! Integration tests for the secure network-join flow (secureConnection +
//! secureLogin) spanning the overlay, crypto and security crates.

use jxta_overlay::OverlayError;
use jxta_overlay_secure::setup::SecureNetworkBuilder;

fn quick_setup(seed: u64) -> jxta_overlay_secure::setup::SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_user("alice", "alice-pw", &["team-a", "team-b"])
        .with_user("bob", "bob-pw", &["team-a"])
        .build()
}

#[test]
fn secure_join_matches_plain_join_outcome() {
    // The secure primitives must be transparent: after a secure join the
    // client is in exactly the same functional state (logged in, same
    // groups) as after a plain join.
    let mut setup = quick_setup(1);
    let broker = setup.broker_id();

    let mut plain = setup.plain_client("plain");
    plain.connect(broker).unwrap();
    plain.login("alice", "alice-pw").unwrap();

    let mut secure = setup.secure_client("secure");
    secure.secure_join(broker, "alice", "alice-pw").unwrap();

    assert_eq!(plain.groups(), secure.inner().groups());
    assert!(secure.inner().is_logged_in());
    assert_eq!(secure.inner().session().unwrap().username, "alice");
}

#[test]
fn secure_join_issues_verifiable_credential_chain() {
    let mut setup = quick_setup(2);
    let broker = setup.broker_id();
    let mut client = setup.secure_client("laptop");
    client.secure_join(broker, "bob", "bob-pw").unwrap();

    // Client credential chains: Cred^Br_Cl verifies under the broker key,
    // and the broker credential verifies under the administrator key.
    let client_cred = client.credential().unwrap();
    let broker_cred = client.broker_credential().unwrap();
    client_cred.verify(&broker_cred.public_key).unwrap();
    broker_cred.verify(setup.admin().public_key()).unwrap();
    assert!(client_cred.binds_key_to_subject());
    assert_eq!(client_cred.subject_id, client.id());
}

#[test]
fn broker_state_reflects_secure_logins() {
    let mut setup = quick_setup(3);
    let broker_id = setup.broker_id();
    let mut alice = setup.secure_client("a");
    let mut bob = setup.secure_client("b");
    alice.secure_join(broker_id, "alice", "alice-pw").unwrap();
    bob.secure_join(broker_id, "bob", "bob-pw").unwrap();

    assert_eq!(setup.broker().session_count(), 2);
    assert!(setup
        .broker()
        .groups()
        .is_member(&jxta_overlay::GroupId::new("team-a"), &alice.id()));
    assert!(setup
        .broker()
        .groups()
        .is_member(&jxta_overlay::GroupId::new("team-a"), &bob.id()));
    assert!(!setup
        .broker()
        .groups()
        .is_member(&jxta_overlay::GroupId::new("team-b"), &bob.id()));
    let stats = setup.broker_extension().stats();
    assert_eq!(stats.credentials_issued, 2);
    assert_eq!(stats.challenges_answered, 2);
    assert_eq!(stats.replays_rejected, 0);
}

#[test]
fn failed_logins_do_not_leave_sessions_behind() {
    let mut setup = quick_setup(4);
    let broker = setup.broker_id();
    let mut client = setup.secure_client("laptop");
    client.secure_connection(broker).unwrap();
    assert!(matches!(
        client.secure_login("alice", "wrong-password"),
        Err(OverlayError::AuthenticationFailed)
    ));
    assert_eq!(setup.broker().session_count(), 0);
    assert!(client.credential().is_none());
    // Unknown users are also rejected.
    client.secure_connection(broker).unwrap();
    assert!(client.secure_login("who", "ever").is_err());
}

#[test]
fn many_clients_can_join_concurrently() {
    // The broker runs on its own thread; several clients joining at the same
    // time must all succeed (thread-safety of the broker-side state).
    let mut setup = SecureNetworkBuilder::new(5)
        .with_key_bits(512)
        .with_user("u0", "p0", &["g"])
        .with_user("u1", "p1", &["g"])
        .with_user("u2", "p2", &["g"])
        .with_user("u3", "p3", &["g"])
        .build();
    let broker = setup.broker_id();
    let clients: Vec<_> = (0..4).map(|i| setup.secure_client(&format!("c{i}"))).collect();

    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                client
                    .secure_join(broker, &format!("u{i}"), &format!("p{i}"))
                    .unwrap();
                client.credential().unwrap().subject_name.clone()
            })
        })
        .collect();
    let names: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(names.len(), 4);
    assert_eq!(setup.broker().session_count(), 4);
}
