//! Integration tests for the broker federation: a 3-broker backbone serving
//! secure clients that join, discover and message each other across brokers.
//!
//! The scenarios mirror the paper's secure primitives, but with the broker
//! role distributed: secure join happens at broker A, a signed-advertisement
//! search resolves a peer homed at broker B, and an encrypted message is
//! relayed A→B with its signature (the end-to-end authenticity check)
//! verified by the receiving client.

use jxta_overlay::net::LinkModel;
use jxta_overlay::GroupId;
use jxta_overlay_secure::secure_client::{ReceivedSecureMessage, SecureClient};
use jxta_overlay_secure::setup::{SecureNetwork, SecureNetworkBuilder};
use jxta_overlay::clock::Deadline;
use std::time::Duration;

/// Drains the client's secure inbox, polling until at least one message
/// arrives or the timeout expires (the final hop of a relayed delivery is
/// performed asynchronously by the destination's home broker).
fn receive_relayed(client: &mut SecureClient) -> Vec<ReceivedSecureMessage> {
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        let received = client.receive_secure_messages().unwrap();
        if !received.is_empty() || deadline.expired() {
            return received;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn three_broker_setup(seed: u64) -> SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_broker_count(3)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("bob", "pw-b", &["ops"])
        .with_user("carol", "pw-c", &["ops"])
        .build()
}

#[test]
fn secure_join_works_at_every_broker_of_the_federation() {
    let mut world = three_broker_setup(30);
    for i in 0..3 {
        let broker = world.broker_id_at(i);
        let mut client = world.secure_client(&format!("client-{i}"));
        client.secure_join(broker, "alice", "pw-a").unwrap();
        let credential = client.credential().unwrap();
        // The credential is issued by the broker the client landed on, whose
        // own credential chains to the administrator.
        assert_eq!(credential.issuer_name, format!("broker-{}", i + 1));
        credential
            .verify(world.broker_extension_at(i).identity().public_key())
            .unwrap();
        assert_eq!(world.broker_extension_at(i).stats().credentials_issued, 1);
    }
    world.shutdown();
}

#[test]
fn signed_advertisement_search_resolves_a_peer_at_another_broker() {
    let mut world = three_broker_setup(31);
    let group = GroupId::new("ops");
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker_a, "alice", "pw-a").unwrap();
    bob.secure_join(broker_b, "bob", "pw-b").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(
        world.federation().await_convergence(Duration::from_secs(2)),
        "the publish must replicate to every broker"
    );

    // Alice searches through *her* broker; the signed advertisement was
    // published at Bob's broker and replicated verbatim, so the XMLdsig
    // signature and the embedded credential still validate.
    let validated = alice.resolve_secure_pipe(&group, bob.id()).unwrap();
    assert_eq!(validated.advertisement.owner, bob.id());
    assert_eq!(validated.credential.subject_name, "bob");
    validated
        .credential
        .verify(world.broker_extension_at(1).identity().public_key())
        .unwrap();
    world.shutdown();
}

#[test]
fn encrypted_message_relays_across_brokers_with_authenticity_intact() {
    let mut world = three_broker_setup(32);
    let group = GroupId::new("ops");
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker_a, "alice", "pw-a").unwrap();
    bob.secure_join(broker_b, "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // The envelope crosses alice → broker A → broker B → bob.
    alice
        .secure_msg_peer_relayed(&group, bob.id(), "rendezvous at dawn")
        .unwrap();
    let received = receive_relayed(&mut bob);
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].text, "rendezvous at dawn");
    assert_eq!(received[0].from, alice.id());
    assert_eq!(
        received[0].sender_username, "alice",
        "the signature verified against alice's credential end-to-end"
    );
    // The delivery to bob and broker B's counter update are unordered with
    // respect to each other; poll briefly before asserting.
    let deadline = Deadline::after(Duration::from_secs(2));
    while world.broker_at(1).federation_stats().relays_delivered == 0
        && !deadline.expired()
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(world.broker_at(0).federation_stats().relays_forwarded, 1);
    assert_eq!(world.broker_at(1).federation_stats().relays_delivered, 1);
    world.shutdown();
}

#[test]
fn replies_flow_back_across_the_backbone() {
    let mut world = three_broker_setup(33);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(world.broker_id_at(2), "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    alice.secure_msg_peer_relayed(&group, bob.id(), "ping").unwrap();
    assert_eq!(receive_relayed(&mut bob)[0].text, "ping");
    bob.secure_msg_peer_relayed(&group, alice.id(), "pong").unwrap();
    let at_alice = receive_relayed(&mut alice);
    assert_eq!(at_alice[0].text, "pong");
    assert_eq!(at_alice[0].sender_username, "bob");
    world.shutdown();
}

#[test]
fn replication_keeps_every_broker_index_identical() {
    let mut world = three_broker_setup(34);
    let group = GroupId::new("ops");

    let mut clients = Vec::new();
    for (i, (user, pw)) in [("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")]
        .iter()
        .enumerate()
    {
        let mut client = world.secure_client(user);
        client.secure_join(world.broker_id_at(i), user, pw).unwrap();
        client.publish_secure_pipe(&group).unwrap();
        clients.push(client);
    }
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    let reference = world.broker_at(0).advertisement_snapshot();
    assert_eq!(reference.len(), 3, "all three signed pipes are indexed");
    for i in 1..3 {
        assert_eq!(world.broker_at(i).advertisement_snapshot(), reference);
    }
    // Sessions stay local — one client homed per broker — while the
    // replicated routing table agrees everywhere.
    for i in 0..3 {
        assert_eq!(world.broker_at(i).session_count(), 1);
        assert_eq!(
            world.broker_at(i).home_of(&clients[1].id()),
            Some(world.broker_id_at(1))
        );
    }
    world.shutdown();
}

#[test]
fn relayed_wire_time_charges_every_hop_of_the_backbone() {
    // Client links are ideal; the broker backbone edge costs 40 ms.  The
    // receiver must be charged the full multi-hop wire time, not just the
    // first hop.
    let mut world = SecureNetworkBuilder::new(35)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("bob", "pw-b", &["ops"])
        .build();
    let backbone = LinkModel::new(Duration::from_millis(40), 0);
    world
        .network()
        .set_link_between(world.broker_id_at(0), world.broker_id_at(1), backbone);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(world.broker_id_at(1), "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    let _ = bob.inner_mut().take_wire_time();
    alice.secure_msg_peer_relayed(&group, bob.id(), "hop hop").unwrap();
    let received = receive_relayed(&mut bob);
    assert_eq!(received[0].text, "hop hop");
    // alice→brokerA (0 ms) + brokerA→brokerB (40 ms) + brokerB→bob (0 ms).
    assert_eq!(
        bob.inner_mut().take_wire_time(),
        Duration::from_millis(40),
        "the backbone hop's wire time reaches the receiver"
    );
    world.shutdown();
}

/// Polls `condition` until it holds or two seconds elapse.
fn eventually(mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        if condition() {
            return true;
        }
        if deadline.expired() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn live_broker_admission_and_removal_on_the_spawned_path() {
    // The threaded deployment grows and shrinks like the inline one: a new
    // broker joins the running backbone (identity, credential, beacons,
    // shard migration included), serves secure clients, and a departing
    // broker's shard is re-replicated by the survivors.
    let mut world = SecureNetworkBuilder::new(37)
        .with_key_bits(512)
        .with_broker_count(3)
        .with_replication_factor(2)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("bob", "pw-b", &["ops"])
        .with_user("carol", "pw-c", &["ops"])
        .build();
    let group = GroupId::new("ops");
    let mut alice = world.secure_client("alice");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    let index = world.add_broker("broker-4");
    assert_eq!(index, 3);
    assert_eq!(world.broker_count(), 4);
    assert!(world.federation().await_convergence(Duration::from_secs(2)));
    // The newcomer's credential chains to the same administrator, and a
    // secure client can join the federation through it.
    world
        .broker_extension_at(3)
        .credential()
        .verify(world.admin().public_key())
        .unwrap();
    let broker_d = world.broker_id_at(3);
    let mut bob = world.secure_client("bob");
    bob.secure_join(broker_d, "bob", "pw-b").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    // Carol joins broker 1 *after* the admission, so her credential beacons
    // include broker-4's credential and she can validate bob end to end
    // (clients that joined earlier get the newcomer's credential through the
    // pushed credential-set update — see
    // `live_clients_learn_a_newly_admitted_brokers_credentials`).
    let mut carol = world.secure_client("carol");
    carol.secure_join(world.broker_id_at(1), "carol", "pw-c").unwrap();
    carol.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Cross-broker messaging works through the late-joined broker, in both
    // directions.
    bob.secure_msg_peer_relayed(&group, carol.id(), "from the newcomer").unwrap();
    assert!(eventually(|| {
        carol
            .receive_secure_messages()
            .map(|m| m.iter().any(|m| m.text == "from the newcomer"))
            .unwrap_or(false)
    }));
    carol.secure_msg_peer_relayed(&group, bob.id(), "to the newcomer").unwrap();
    assert!(eventually(|| {
        bob.receive_secure_messages()
            .map(|m| m.iter().any(|m| m.text == "to the newcomer"))
            .unwrap_or(false)
    }));

    // Removing a broker keeps every entry at its replication factor.
    world.remove_broker(2);
    assert_eq!(world.broker_count(), 3);
    assert!(world.federation().await_convergence(Duration::from_secs(2)));
    let total: usize = (0..3)
        .map(|i| world.broker_at(i).advertisement_entry_count())
        .sum();
    assert_eq!(total, 3 * 2, "three signed pipes, two replicas each");
    world.shutdown();
}

#[test]
fn live_clients_learn_a_newly_admitted_brokers_credentials() {
    // Regression for ROADMAP open item #2: a client that ran
    // `secureConnection` *before* a broker was admitted only knew the
    // credential beacons of that moment, so it could never validate
    // advertisements signed under credentials the newcomer issues.  Broker
    // admission now pushes a signed credential-set update to every live
    // client, and the client absorbs it (verifying the push against its
    // authenticated home broker and each credential against the admin
    // anchor) before retrying a failed validation.
    let mut world = SecureNetworkBuilder::new(73)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("dave", "pw-d", &["ops"])
        .build();
    let group = GroupId::new("ops");

    // Alice joins *before* the admission: her anchors cover brokers 1-2.
    let mut alice = world.secure_client("alice");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    assert_eq!(alice.trust().brokers().len(), 2);

    let index = world.add_broker("broker-3");
    let broker_c = world.broker_id_at(index);
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Dave joins the newcomer: his signed pipe advertisement embeds a
    // credential issued by broker-3 — one alice never saw at join time.
    let mut dave = world.secure_client("dave");
    dave.secure_join(broker_c, "dave", "pw-d").unwrap();
    dave.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Pre-admission alice validates dave's advertisement: the pushed update
    // waiting in her inbox is absorbed on the validation miss and the
    // newcomer's credential now chains.
    let validated = alice.resolve_secure_pipe(&group, dave.id()).unwrap();
    assert_eq!(validated.credential.issuer_name, "broker-3");
    assert_eq!(
        alice.trust().brokers().len(),
        3,
        "the newcomer's credential joined alice's trust anchors"
    );

    // And the full secure path works on top of it.
    alice
        .secure_msg_peer_relayed(&group, dave.id(), "hello post-admission world")
        .unwrap();
    assert!(eventually(|| {
        dave.receive_secure_messages()
            .map(|m| m.iter().any(|m| m.text == "hello post-admission world"))
            .unwrap_or(false)
    }));
    world.shutdown();
}

#[test]
fn late_joining_broker_learns_prior_revocations() {
    // PR 3's `revoke` pushed the list in-process to the brokers that existed
    // at call time, so a broker joining afterwards never learned it.  Now
    // the admin-signed list travels the backbone and rides in anti-entropy
    // snapshots: the newcomer catches up automatically and refuses the
    // revoked identity.
    let mut world = SecureNetworkBuilder::new(38)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("mallory", "pw-m", &["ops"])
        .build();
    let mut mallory = world.secure_client("mallory-pc");
    mallory.secure_join(world.broker_id_at(0), "mallory", "pw-m").unwrap();

    world.revoke(&[mallory.id()], &["mallory"]);
    // The backbone gossip reaches the *current* brokers.
    assert!(eventually(|| world
        .broker_extension_at(1)
        .is_revoked(&mallory.id(), Some("mallory"))));

    // A broker deployed *after* the revocation starts empty; the admission
    // anti-entropy round carries the signed lists across the backbone, so
    // it catches up with no in-process push.
    let index = world.add_broker("broker-3");
    assert!(world.federation().await_convergence(Duration::from_secs(2)));
    assert!(
        eventually(|| world
            .broker_extension_at(index)
            .is_revoked(&mallory.id(), Some("mallory"))),
        "anti-entropy must deliver prior revocations to the late joiner"
    );

    // The late joiner now enforces them: a fresh device logging in under
    // the revoked account is refused a credential.
    let broker_c = world.broker_id_at(index);
    let mut mallory_again = world.secure_client("mallory-tablet");
    let err = mallory_again.secure_join(broker_c, "mallory", "pw-m");
    assert!(err.is_err(), "revoked account must be refused at the late joiner");
    assert!(world.broker_extension_at(index).stats().revoked_rejected >= 1);
    world.shutdown();
}

#[test]
fn relay_to_a_peer_unknown_to_the_federation_is_rejected() {
    let mut world = three_broker_setup(36);
    let group = GroupId::new("ops");
    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(world.broker_id_at(1), "bob", "pw-b").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Bob logs out; once the departure replicates, relays towards him fail
    // at alice's broker.
    world.broker_at(1).drop_session(&bob.id());
    assert!(world.federation().await_convergence(Duration::from_secs(2)));
    let result = alice.secure_msg_peer_relayed(&group, bob.id(), "anyone there?");
    assert!(result.is_err());
    assert!(world.broker_at(0).federation_stats().relays_failed >= 1);
    world.shutdown();
}

/// The PR 10 acceptance scenario: a 128-broker epidemic federation loses one
/// broker to a crash-stop mid-broadcast, and *every* surviving broker's
/// active view excludes the dead broker within the SWIM probe budget —
/// purely through the failure detector riding the repair cadence, with no
/// operator `remove_broker` call anywhere.
#[test]
fn swim_evicts_a_crashed_broker_from_a_128_broker_federation() {
    use jxta_crypto::drbg::HmacDrbg;
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::net::{FaultPlan, SimNetwork};
    use jxta_overlay::swim::{PeerState, PROBE_BUDGET_TICKS};
    use jxta_overlay::{PeerId, UserDatabase};
    use std::sync::Arc;

    const N: usize = 128;
    let mut rng = HmacDrbg::from_seed_u64(0x128B);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    let brokers: Vec<Arc<Broker>> = (0..N)
        .map(|i| {
            Broker::new(
                PeerId::random(&mut rng),
                BrokerConfig::named(format!("b{i}")).with_view_capacities(4, 12),
                Arc::clone(&network),
                Arc::clone(&database),
            )
        })
        .collect();
    let ids: Vec<PeerId> = brokers.iter().map(|b| b.id()).collect();
    let federation = InlineFederation::new(brokers);
    assert!(federation.broker(0).epidemic_engaged());

    let victim = 1usize;
    let plan = FaultPlan::new(0x128C).crash_stop(ids[victim], 0).into_adversary();
    network.set_adversary(plan.clone());

    // The crash lands mid-broadcast.
    federation.broker(0).index_and_distribute(
        PeerId::random(&mut rng),
        &GroupId::new("ops"),
        "jxta:PipeAdvertisement",
        "<casualty/>",
    );
    federation.pump();

    for _ in 0..PROBE_BUDGET_TICKS {
        for (i, id) in ids.iter().enumerate() {
            if !plan.is_crashed(id) {
                federation.broker(i).start_repair_round();
            }
        }
        federation.pump();
        plan.advance_tick();
    }

    for (i, _) in ids.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert!(
            matches!(
                federation.broker(i).swim_record(&ids[victim]).map(|r| r.state),
                Some(PeerState::Dead)
            ),
            "survivor {i} has not confirmed the crashed broker dead within the budget"
        );
        assert!(
            !federation.broker(i).active_view().contains(&ids[victim]),
            "survivor {i} still keeps the crashed broker in its active view"
        );
        assert_eq!(
            federation.broker(i).swim_dead_members(),
            vec![ids[victim]],
            "survivor {i} buried a live broker along the way"
        );
    }
}
