//! Integration tests of the staged broker ingress pipeline.
//!
//! The pipeline (`BrokerConfig::verify_workers`) splits ingress into an
//! ingress thread, a parallel decode/pre-verify pool, and a dispatcher that
//! restores exact arrival order through a ticket reorder buffer and then
//! routes each message into partitioned apply lanes: partition-local
//! messages (publishes, keyed by the `(group, owner)` shard key) apply in
//! parallel across lanes, partition-spanning messages apply under a
//! full-lane barrier.  Its contract is *observational equivalence* with the
//! classic single-thread loop: same message sequence in, same broker state
//! out — per-sender FIFO and the inter-broker replay protection included.
//! These tests pin that contract:
//!
//! * a proptest feeds the identical message sequence to an inline broker
//!   (direct `process_net`) and pipelined spawned brokers with 1, 2 and 8
//!   apply lanes, and requires bit-identical final state and federation
//!   counters from every lane count;
//! * a unit test checks the barrier ordering directly: a lookup (barrier)
//!   fired right behind a storm of publishes spread across lanes must
//!   observe every single one of them;
//! * a concurrency stress test runs many client threads against a pipelined
//!   2-broker federation with bounded inboxes and an adversarial lossy
//!   backbone, asserting no replay-protection trips, per-sender ordering of
//!   delivered messages, and post-repair convergence;
//! * an end-to-end check runs the full secure stack (signed publishes,
//!   verified-signature cache, secure messaging) on pipelined brokers.

use jxta_crypto::drbg::HmacDrbg;
use jxta_overlay::broker::{Broker, BrokerConfig};
use jxta_overlay::client::{ClientConfig, ClientEvent, ClientPeer};
use jxta_overlay::federation::BrokerNetwork;
use jxta_overlay::net::{LinkModel, NetMessage, RandomDrop, SimNetwork};
use jxta_overlay::{GroupId, Message, MessageKind, PeerId, UserDatabase};
use proptest::prelude::*;
use std::sync::Arc;
use jxta_overlay::clock::Deadline;
use std::time::Duration;

/// One scripted ingress operation: `(kind selector, sender selector, a, b)`.
type Op = (u8, u8, u8, u8);

const SCRIPT_USERS: usize = 3;
const SCRIPT_GROUPS: [&str; 2] = ["math", "chem"];

/// Builds the raw network payload for one scripted op.  `clients` are the
/// scripted client identities and `fake_broker` a registered peer broker
/// whose `BrokerSync` traffic exercises the replay protection (stale and
/// duplicate sequence numbers included, by construction of `a % 8`).
fn script_message(
    op: Op,
    clients: &[PeerId],
    fake_broker: PeerId,
    owner: PeerId,
) -> (PeerId, Vec<u8>) {
    let (kind, sender, a, b) = op;
    let from = clients[sender as usize % clients.len()];
    let group = SCRIPT_GROUPS[a as usize % SCRIPT_GROUPS.len()];
    let user = sender as usize % SCRIPT_USERS;
    match kind % 6 {
        0 => (
            from,
            Message::new(MessageKind::ConnectRequest, from, u64::from(a)).to_bytes(),
        ),
        1 => {
            let password = if a % 2 == 0 { "pw" } else { "wrong" };
            (
                from,
                Message::new(MessageKind::LoginRequest, from, u64::from(a))
                    .with_str("username", &format!("user-{user}"))
                    .with_str("password", password)
                    .to_bytes(),
            )
        }
        2 => (
            from,
            Message::new(MessageKind::PublishAdvertisement, from, u64::from(a))
                .with_str("group", group)
                .with_str("doc-type", "jxta:PipeAdvertisement")
                .with_str("xml", &format!("<adv a=\"{a}\" b=\"{b}\"/>"))
                .to_bytes(),
        ),
        3 => (
            from,
            Message::new(MessageKind::LookupRequest, from, u64::from(a))
                .with_str("group", group)
                .with_str("doc-type", "jxta:PipeAdvertisement")
                .to_bytes(),
        ),
        4 => (from, vec![a, b, 0xde, 0xad]), // undecodable traffic
        _ => (
            fake_broker,
            Message::new(MessageKind::BrokerSync, fake_broker, 0)
                .with_str("op", "publish")
                .with_str("seq", &(u64::from(a) % 8).to_string())
                .with_str("group", group)
                .with_str("doc-type", "jxta:FileAdvertisement")
                .with_str("owner", &owner.to_urn())
                .with_str("xml", &format!("<file b=\"{b}\"/>"))
                .to_bytes(),
        ),
    }
}

fn script_world(seed: u64, config: BrokerConfig) -> (Arc<SimNetwork>, Arc<Broker>, Vec<PeerId>, PeerId, PeerId) {
    let mut rng = HmacDrbg::from_seed_u64(seed);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    for user in 0..SCRIPT_USERS {
        database.register_user(
            &mut rng,
            &format!("user-{user}"),
            "pw",
            &[GroupId::new("math"), GroupId::new("chem")],
        );
    }
    let broker = Broker::new(
        PeerId::random(&mut rng),
        config,
        Arc::clone(&network),
        Arc::clone(&database),
    );
    let clients: Vec<PeerId> = (0..4).map(|_| PeerId::random(&mut rng)).collect();
    let fake_broker = PeerId::random(&mut rng);
    let owner = PeerId::random(&mut rng);
    broker.add_peer_broker(fake_broker);
    (network, broker, clients, fake_broker, owner)
}

/// The comparable digest of a broker's state after a script ran.
#[allow(clippy::type_complexity)]
fn state_digest(
    broker: &Broker,
) -> (
    Vec<(GroupId, PeerId, String, String)>,
    Vec<(GroupId, Vec<PeerId>)>,
    Vec<(PeerId, PeerId)>,
    usize,
    (u64, u64, u64),
) {
    let stats = broker.federation_stats();
    (
        broker.advertisement_snapshot(),
        broker.groups().snapshot(),
        broker.routing_snapshot(),
        broker.session_count(),
        (
            stats.syncs_applied,
            stats.rejected_replayed,
            stats.rejected_unknown_origin,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline's load-bearing property: for any message sequence
    /// delivered in a fixed total order, the pipelined broker (parallel
    /// decode/verify, ticket-ordered dispatch into partitioned apply lanes)
    /// ends in exactly the state the classic inline application produces —
    /// replay-protection counters included — whatever the lane count.  The
    /// script mixes partition-local publishes with barrier kinds (connects,
    /// logins, lookups, inter-broker sync) and undecodable garbage, so every
    /// dispatch route is exercised.
    #[test]
    fn pipelined_apply_is_equivalent_to_inline(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            0..60,
        ),
    ) {
        // Universe A: inline — process_net on the caller's thread.
        let (_net_a, inline_broker, clients, fake, owner) =
            script_world(0x91BE, BrokerConfig::named("inline"));
        for &op in &ops {
            let (from, payload) = script_message(op, &clients, fake, owner);
            inline_broker.process_net(NetMessage {
                from,
                to: inline_broker.id(),
                payload,
                wire_time: Duration::ZERO,
            });
        }

        // Universe B (once per lane count): the same broker identity and
        // script, but spawned with a verify pool, a bounded inbox and a
        // partitioned apply stage, fed over the network.
        for lanes in [1usize, 2, 8] {
            let (net_b, pipelined_broker, clients_b, fake_b, owner_b) = script_world(
                0x91BE,
                BrokerConfig::named("pipelined")
                    .with_pipeline(3, 16)
                    .with_apply_lanes(lanes),
            );
            prop_assert_eq!(inline_broker.id(), pipelined_broker.id());
            let handle = pipelined_broker.spawn();
            for &op in &ops {
                let (from, payload) = script_message(op, &clients_b, fake_b, owner_b);
                net_b.send(from, pipelined_broker.id(), payload).unwrap();
            }
            let deadline = Deadline::after(Duration::from_secs(10));
            while pipelined_broker.processed_count()
                != net_b.delivered_to(&pipelined_broker.id())
            {
                prop_assert!(!deadline.expired(), "pipelined broker must drain");
                std::thread::sleep(Duration::from_micros(200));
            }

            prop_assert_eq!(state_digest(&inline_broker), state_digest(&pipelined_broker));
            prop_assert_eq!(
                pipelined_broker.processed_count(),
                inline_broker.processed_count()
            );
            let stats = pipelined_broker.pipeline_stats();
            prop_assert_eq!(stats.apply_lanes, lanes as u64);
            // Every scripted publish is partition-local, everything else is
            // a barrier or undecodable (the garbage op occasionally decodes
            // by accident, so only the publish count is exact).
            prop_assert_eq!(
                stats.lane_messages,
                ops.iter().filter(|(kind, ..)| kind % 6 == 2).count() as u64,
                "publishes apply on lanes"
            );
            prop_assert!(
                stats.lane_messages + stats.barriers_applied <= stats.messages_pipelined,
                "lane and barrier applies partition the pipelined messages"
            );
            handle.shutdown();
        }
    }
}

/// Direct check of the barrier ordering guarantee: a partition-spanning
/// message dispatched right behind a storm of partition-local publishes must
/// observe *all* of them, no matter which lanes they landed on or how far
/// the lanes had drained when the barrier arrived.
#[test]
fn barrier_observes_all_prior_lane_applies() {
    const GROUPS: usize = 8;
    const ROUNDS: usize = 25;

    let mut rng = HmacDrbg::from_seed_u64(0xBA44);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    let groups: Vec<GroupId> = (0..GROUPS).map(|i| GroupId::new(format!("g{i}"))).collect();
    database.register_user(&mut rng, "alice", "pw", &groups);
    let broker = Broker::new(
        PeerId::random(&mut rng),
        BrokerConfig::named("laned")
            .with_pipeline(4, 64)
            .with_apply_lanes(4),
        Arc::clone(&network),
        Arc::clone(&database),
    );
    let handle = broker.spawn();

    let client = PeerId::random(&mut rng);
    let inbox = network.register(client);
    network
        .send(
            client,
            broker.id(),
            Message::new(MessageKind::ConnectRequest, client, 1).to_bytes(),
        )
        .unwrap();
    network
        .send(
            client,
            broker.id(),
            Message::new(MessageKind::LoginRequest, client, 2)
                .with_str("username", "alice")
                .with_str("password", "pw")
                .to_bytes(),
        )
        .unwrap();

    // Publishes spread over GROUPS partitions (distinct shard keys, hence
    // spread over lanes), immediately chased by one lookup per round — a
    // barrier that must see every publish of its own round.
    let mut seq = 2u64;
    for round in 0..ROUNDS {
        for group in &groups {
            seq += 1;
            network
                .send(
                    client,
                    broker.id(),
                    Message::new(MessageKind::PublishAdvertisement, client, seq)
                        .with_str("group", group.as_str())
                        .with_str("doc-type", "jxta:PipeAdvertisement")
                        .with_str("xml", &format!("<adv round=\"{round}\"/>"))
                        .to_bytes(),
                )
                .unwrap();
        }
        seq += 1;
        network
            .send(
                client,
                broker.id(),
                Message::new(MessageKind::LookupRequest, client, seq)
                    .with_str("group", groups[round % GROUPS].as_str())
                    .with_str("doc-type", "jxta:PipeAdvertisement")
                    .to_bytes(),
            )
            .unwrap();
    }

    // Every lookup response must carry the round's freshly published XML:
    // the barrier happened-after all its round's lane applies.
    let mut lookups_seen = 0usize;
    let deadline = Deadline::after(Duration::from_secs(10));
    while lookups_seen < ROUNDS {
        assert!(!deadline.expired(), "all lookup responses must arrive");
        let Ok(net_message) = inbox.recv_timeout(Duration::from_secs(1)) else {
            continue;
        };
        let message = Message::from_bytes(&net_message.payload).unwrap();
        if message.kind != MessageKind::LookupResponse {
            continue;
        }
        assert_eq!(message.element_str("count").as_deref(), Some("1"));
        let xml = message.element_str("adv-0").unwrap_or_default();
        assert_eq!(
            xml,
            format!("<adv round=\"{lookups_seen}\"/>"),
            "lookup {lookups_seen} must observe its round's publish"
        );
        lookups_seen += 1;
    }

    let stats = broker.pipeline_stats();
    assert_eq!(stats.apply_lanes, 4);
    assert!(
        stats.lane_messages >= (GROUPS * ROUNDS) as u64,
        "publishes applied on lanes: {stats:?}"
    );
    assert!(
        stats.barriers_applied >= ROUNDS as u64,
        "lookups applied as barriers: {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_federation_survives_concurrent_senders_and_a_lossy_backbone() {
    const SENDERS: usize = 8;
    const MESSAGES_PER_SENDER: usize = 12;

    let mut rng = HmacDrbg::from_seed_u64(0x57E5);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    for i in 0..SENDERS {
        database.register_user(&mut rng, &format!("sender-{i}"), "pw", &[GroupId::new("g")]);
    }
    database.register_user(&mut rng, "sink", "pw", &[GroupId::new("g")]);
    let brokers: Vec<Arc<Broker>> = (0..2)
        .map(|i| {
            Broker::new(
                PeerId::random(&mut rng),
                BrokerConfig::named(format!("broker-{i}")).with_pipeline(4, 32),
                Arc::clone(&network),
                Arc::clone(&database),
            )
        })
        .collect();
    let broker_ids: Vec<PeerId> = brokers.iter().map(|b| b.id()).collect();
    let federation = BrokerNetwork::spawn(brokers);

    // The receiver is homed at broker 1; all senders at broker 0, so every
    // delivery crosses the (lossy) backbone.
    let mut sink = ClientPeer::with_random_id(
        Arc::clone(&network),
        ClientConfig::named("sink"),
        &mut rng,
    );
    sink.connect(broker_ids[1]).unwrap();
    sink.login("sink", "pw").unwrap();
    let sink_id = sink.id();

    // 25% of the inter-broker traffic is dropped while the senders hammer
    // broker 0 from parallel threads.
    let dropper = RandomDrop::between(0xD20, 25, broker_ids.clone());
    network.set_adversary(dropper.clone());

    let mut senders: Vec<ClientPeer> = (0..SENDERS)
        .map(|i| {
            let mut client = ClientPeer::with_random_id(
                Arc::clone(&network),
                ClientConfig::named(format!("sender-{i}")),
                &mut rng,
            );
            client.connect(broker_ids[0]).unwrap();
            client.login(&format!("sender-{i}"), "pw").unwrap();
            client
        })
        .collect();
    std::thread::scope(|scope| {
        for (i, client) in senders.iter_mut().enumerate() {
            scope.spawn(move || {
                let group = GroupId::new("g");
                for j in 0..MESSAGES_PER_SENDER {
                    // Interleave state-bearing publishes with ordered relays.
                    client
                        .publish_advertisement(
                            &group,
                            &format!("jxta:Adv-{j}"),
                            &format!("<adv sender=\"{i}\" n=\"{j}\"/>"),
                        )
                        .unwrap();
                    client.relay_msg_peer(&group, sink_id, &format!("{i}:{j}")).unwrap();
                }
            });
        }
    });
    network.clear_adversary();
    assert!(dropper.dropped_count() > 0, "the adversary must actually bite");

    // No replay-protection trips: the pipeline kept every broker's outgoing
    // sequence numbers in allocation order despite 8 concurrent senders.
    for i in 0..federation.len() {
        assert_eq!(
            federation.broker(i).federation_stats().rejected_replayed,
            0,
            "broker {i} saw out-of-order inter-broker sequences"
        );
    }

    // Per-sender FIFO: whatever subset of each sender's relays survived the
    // drops arrives in increasing order.
    let mut last_seen: Vec<i64> = vec![-1; SENDERS];
    let mut delivered = 0usize;
    while let Some(event) = sink.wait_for_event(Duration::from_millis(200)) {
        if let ClientEvent::Text { text, .. } = event {
            let (sender, n) = text.split_once(':').expect("payload shape");
            let sender: usize = sender.parse().unwrap();
            let n: i64 = n.parse().unwrap();
            assert!(
                n > last_seen[sender],
                "sender {sender}: message {n} arrived after {}",
                last_seen[sender]
            );
            last_seen[sender] = n;
            delivered += 1;
        }
    }
    assert!(delivered > 0, "some relays must get through a 25% drop rate");

    // The lossy episode healed: anti-entropy reconverges the replicas and
    // the dropped publishes reappear on broker 1.
    for _ in 0..8 {
        if federation.converged() {
            break;
        }
        federation.trigger_repair();
        federation.await_convergence(Duration::from_secs(5));
    }
    assert!(federation.converged(), "repair reconverges the federation");
    assert!(
        federation.broker(0).pipeline_stats().messages_pipelined > 0,
        "the staged pipeline actually carried the load"
    );
    federation.shutdown();
}

#[test]
fn secure_stack_runs_end_to_end_on_pipelined_brokers() {
    use jxta_overlay_secure::setup::SecureNetworkBuilder;
    let mut setup = SecureNetworkBuilder::new(0x5EC9)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_verify_workers(2)
        .with_inbox_capacity(64)
        .with_user("alice", "pw-a", &["math"])
        .with_user("bob", "pw-b", &["math"])
        .build();
    let group = GroupId::new("math");
    let mut alice = setup.secure_client("alice-pc");
    let mut bob = setup.secure_client("bob-pc");
    alice.secure_join(setup.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(setup.broker_id_at(1), "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(setup.federation().await_convergence(Duration::from_secs(5)));

    // Cross-broker secure messaging over the pipelined ingress.
    alice
        .secure_msg_peer_relayed(&group, bob.id(), "pipelined hello")
        .unwrap();
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        let received = bob.receive_secure_messages().unwrap();
        if received.iter().any(|m| m.text == "pipelined hello") {
            break;
        }
        assert!(!deadline.expired(), "relayed secure message must arrive");
        std::thread::yield_now();
    }

    // The ingress verify stage pre-verified the signed publishes and the
    // gossip they rode in, through the verified-signature cache.
    let preverified: u64 = (0..2)
        .map(|i| setup.broker_extension_at(i).stats().ingress_preverified)
        .sum();
    assert!(preverified > 0, "signed content was verified at ingress");
    let cache_stats = setup.broker_extension_at(1).verify_cache_stats();
    assert!(
        cache_stats.hits > 0,
        "gossiped signatures hit the verify cache: {cache_stats:?}"
    );
    setup.shutdown();
}
