//! Integration tests pitting the adversaries of paper §2.3 against both the
//! plain and the secure primitives.

use jxta_overlay::{GroupId, MessageKind};
use jxta_overlay_secure::attacks::{
    Eavesdropper, FakeBroker, LoginReplayAttacker, RedirectToFakeBroker,
};
use jxta_overlay_secure::setup::SecureNetworkBuilder;

fn setup(seed: u64) -> jxta_overlay_secure::setup::SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_user("alice", "s3cret-password", &["ops"])
        .with_user("bob", "bob-pw", &["ops"])
        .build()
}

#[test]
fn passwords_and_messages_are_invisible_to_eavesdroppers() {
    let mut world = setup(20);
    let broker = world.broker_id();
    let group = GroupId::new("ops");
    let spy = Eavesdropper::new();
    world.network().set_adversary(spy.clone());

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker, "bob", "bob-pw").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    alice.secure_msg_peer(&group, bob.id(), "launch code 0000").unwrap();
    assert_eq!(bob.receive_secure_messages().unwrap()[0].text, "launch code 0000");

    assert!(spy.observed_count() > 0, "the spy did see traffic");
    assert!(!spy.saw_text("s3cret-password"));
    assert!(!spy.saw_text("launch code 0000"));
}

#[test]
fn secure_login_replay_is_rejected_by_the_broker() {
    let mut world = setup(21);
    let broker = world.broker_id();
    let replayer = LoginReplayAttacker::new(MessageKind::SecureLoginRequest);
    world.network().set_adversary(replayer.clone());

    let mut victim = world.secure_client("victim");
    victim.secure_join(broker, "alice", "s3cret-password").unwrap();
    assert!(replayer.has_capture());
    world.network().clear_adversary();

    let rejected_before = world.broker_extension().stats().replays_rejected;
    assert!(replayer.replay(world.network(), None));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while world.broker_extension().stats().replays_rejected == rejected_before
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(
        world.broker_extension().stats().replays_rejected,
        rejected_before + 1
    );
    // No extra credential was ever issued for the replay.
    assert_eq!(world.broker_extension().stats().credentials_issued, 1);
}

#[test]
fn fake_broker_is_detected_before_credentials_are_sent() {
    let mut world = setup(22);
    let broker = world.broker_id();
    let fake = FakeBroker::spawn(world.network(), 0xFA, 512);
    world
        .network()
        .set_adversary(RedirectToFakeBroker::new(broker, fake.id()));

    let mut client = world.secure_client("client");
    assert!(client.secure_connection(broker).is_err());
    // secureLogin cannot even be attempted, so nothing is harvested.
    assert!(client.secure_login("alice", "s3cret-password").is_err());
    assert!(fake.harvested_credentials().is_empty());
    world.network().clear_adversary();

    // Once the redirection stops, the same client joins normally.
    client.secure_connection(broker).unwrap();
    client.secure_login("alice", "s3cret-password").unwrap();
    assert!(client.credential().is_some());
}

#[test]
fn forged_advertisements_cannot_hijack_secure_messages() {
    // Bob (a legitimate user) forges a pipe advertisement claiming Alice's
    // identifier, trying to receive messages meant for her.
    use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
    let mut world = setup(23);
    let broker = world.broker_id();
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    let mut carol_like = world.secure_client("sender");
    alice.secure_join(broker, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker, "bob", "bob-pw").unwrap();
    // The "sender" logs in as bob too (two devices, same account).
    carol_like.secure_join(broker, "bob", "bob-pw").unwrap();

    // Bob publishes a forged advertisement that claims to be Alice's pipe,
    // signed with his own legitimate credential.
    let forged = PipeAdvertisement {
        owner: alice.id(),
        group: group.clone(),
        name: "definitely-alice".into(),
    };
    let mut element = forged.to_element();
    jxta_overlay_secure::signed_adv::sign_advertisement(
        &mut element,
        bob.identity(),
        bob.credential().unwrap(),
    )
    .unwrap();
    bob.inner_mut()
        .publish_advertisement(&group, PipeAdvertisement::DOC_TYPE, &element.to_xml())
        .unwrap();

    // The sender tries to message Alice: the only advertisement available for
    // her identifier is the forged one, which fails validation, so no message
    // is ever sent with a key controlled by Bob.
    let result = carol_like.secure_msg_peer(&group, alice.id(), "for alice only");
    assert!(result.is_err());
    assert!(bob.receive_secure_messages().unwrap().is_empty());
}
