//! Integration tests pitting the adversaries of paper §2.3 against both the
//! plain and the secure primitives, plus the *inter-broker* adversaries of
//! the federation backbone: once messages transit intermediate brokers, the
//! replay/redirect/tamper threats re-appear on the broker–broker links and
//! must be re-validated there.

use jxta_overlay::{GroupId, MessageKind};
use jxta_overlay_secure::attacks::{
    EdgeAdversary, Eavesdropper, FakeBroker, InterBrokerReplayAttacker, LoginReplayAttacker,
    RedirectToFakeBroker,
};
use jxta_overlay_secure::setup::SecureNetworkBuilder;
use jxta_overlay::clock::Deadline;
use std::time::Duration;

fn setup(seed: u64) -> jxta_overlay_secure::setup::SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_user("alice", "s3cret-password", &["ops"])
        .with_user("bob", "bob-pw", &["ops"])
        .build()
}

#[test]
fn passwords_and_messages_are_invisible_to_eavesdroppers() {
    let mut world = setup(20);
    let broker = world.broker_id();
    let group = GroupId::new("ops");
    let spy = Eavesdropper::new();
    world.network().set_adversary(spy.clone());

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker, "bob", "bob-pw").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    alice.secure_msg_peer(&group, bob.id(), "launch code 0000").unwrap();
    assert_eq!(bob.receive_secure_messages().unwrap()[0].text, "launch code 0000");

    assert!(spy.observed_count() > 0, "the spy did see traffic");
    assert!(!spy.saw_text("s3cret-password"));
    assert!(!spy.saw_text("launch code 0000"));
}

#[test]
fn secure_login_replay_is_rejected_by_the_broker() {
    let mut world = setup(21);
    let broker = world.broker_id();
    let replayer = LoginReplayAttacker::new(MessageKind::SecureLoginRequest);
    world.network().set_adversary(replayer.clone());

    let mut victim = world.secure_client("victim");
    victim.secure_join(broker, "alice", "s3cret-password").unwrap();
    assert!(replayer.has_capture());
    world.network().clear_adversary();

    let rejected_before = world.broker_extension().stats().replays_rejected;
    assert!(replayer.replay(world.network(), None));
    let deadline = Deadline::after(std::time::Duration::from_secs(2));
    while world.broker_extension().stats().replays_rejected == rejected_before
        && !deadline.expired()
    {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(
        world.broker_extension().stats().replays_rejected,
        rejected_before + 1
    );
    // No extra credential was ever issued for the replay.
    assert_eq!(world.broker_extension().stats().credentials_issued, 1);
}

#[test]
fn fake_broker_is_detected_before_credentials_are_sent() {
    let mut world = setup(22);
    let broker = world.broker_id();
    let fake = FakeBroker::spawn(world.network(), 0xFA, 512);
    world
        .network()
        .set_adversary(RedirectToFakeBroker::new(broker, fake.id()));

    let mut client = world.secure_client("client");
    assert!(client.secure_connection(broker).is_err());
    // secureLogin cannot even be attempted, so nothing is harvested.
    assert!(client.secure_login("alice", "s3cret-password").is_err());
    assert!(fake.harvested_credentials().is_empty());
    world.network().clear_adversary();

    // Once the redirection stops, the same client joins normally.
    client.secure_connection(broker).unwrap();
    client.secure_login("alice", "s3cret-password").unwrap();
    assert!(client.credential().is_some());
}

fn federated_setup(seed: u64) -> jxta_overlay_secure::setup::SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_user("alice", "s3cret-password", &["ops"])
        .with_user("bob", "bob-pw", &["ops"])
        .build()
}

/// Polls `condition` until it holds or two seconds elapse.
fn eventually(mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        if condition() {
            return true;
        }
        if deadline.expired() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn replayed_inter_broker_gossip_is_rejected() {
    let mut world = federated_setup(40);
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);
    let tap = InterBrokerReplayAttacker::new(broker_a, broker_b, MessageKind::BrokerSync);
    world.network().set_adversary(tap.clone());

    // A secure join at broker A produces membership gossip towards broker B.
    let mut alice = world.secure_client("alice");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    assert!(eventually(|| tap.has_capture()), "gossip crossed the tapped edge");
    world.network().clear_adversary();
    assert!(eventually(|| world.federation().converged()));

    // Re-injecting the captured gossip verbatim is detected by the
    // per-origin sequence numbers and changes nothing.
    let routing_before = world.broker_at(1).routing_snapshot();
    let rejected_before = world.broker_at(1).federation_stats().rejected_replayed;
    assert!(tap.replay(world.network(), None));
    assert!(eventually(|| {
        world.broker_at(1).federation_stats().rejected_replayed > rejected_before
    }));
    assert_eq!(world.broker_at(1).routing_snapshot(), routing_before);
    world.shutdown();
}

#[test]
fn replayed_inter_broker_relay_does_not_duplicate_the_message() {
    let mut world = federated_setup(41);
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker_b, "bob", "bob-pw").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(eventually(|| world.federation().converged()));

    let tap = InterBrokerReplayAttacker::new(broker_a, broker_b, MessageKind::BrokerRelay);
    world.network().set_adversary(tap.clone());
    alice.secure_msg_peer_relayed(&group, bob.id(), "wire the funds").unwrap();
    assert!(eventually(|| tap.has_capture()));
    world.network().clear_adversary();

    // The original arrives exactly once.
    assert!(eventually(|| {
        world.broker_at(1).federation_stats().relays_delivered == 1
    }));
    assert_eq!(bob.receive_secure_messages().unwrap().len(), 1);

    // The replayed relay is rejected by broker B's sequence tracking, so the
    // payment instruction is NOT delivered (and hence not surfaced) twice.
    let rejected_before = world.broker_at(1).federation_stats().rejected_replayed;
    assert!(tap.replay(world.network(), None));
    assert!(eventually(|| {
        world.broker_at(1).federation_stats().rejected_replayed > rejected_before
    }));
    assert_eq!(world.broker_at(1).federation_stats().relays_delivered, 1);
    assert!(bob.receive_secure_messages().unwrap().is_empty());
    world.shutdown();
}

#[test]
fn forged_gossip_from_outside_the_federation_is_rejected() {
    let mut world = federated_setup(42);
    let broker_a = world.broker_id_at(0);

    let mut alice = world.secure_client("alice");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    assert!(eventually(|| world.federation().converged()));

    // A rogue peer (never admitted to the backbone) sends a well-formed
    // publish gossip trying to poison broker A's index.
    let rogue = world.plain_client("rogue");
    let forged = jxta_overlay::Message::new(MessageKind::BrokerSync, rogue.id(), 0)
        .with_str("op", "publish")
        .with_str("group", "ops")
        .with_str("doc-type", "jxta:PipeAdvertisement")
        .with_str("owner", &rogue.id().to_urn())
        .with_str("xml", "<forged/>")
        .with_str("seq", "1");
    let index_before = world.broker_at(0).advertisement_snapshot();
    world
        .network()
        .send(rogue.id(), broker_a, forged.to_bytes())
        .unwrap();
    assert!(eventually(|| {
        world.broker_at(0).federation_stats().rejected_unknown_origin >= 1
    }));
    assert_eq!(world.broker_at(0).advertisement_snapshot(), index_before);
    world.shutdown();
}

#[test]
fn redirected_backbone_edge_leaks_nothing_and_delivers_nothing() {
    let mut world = federated_setup(43);
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker_b, "bob", "bob-pw").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(eventually(|| world.federation().converged()));

    // A compromised backbone router between A and B diverts the edge to a
    // rogue endpoint that records everything it is handed.
    let mut rogue = world.plain_client("rogue-router");
    let redirect = EdgeAdversary::redirect(broker_a, broker_b, rogue.id());
    world.network().set_adversary(redirect.clone());

    alice.secure_msg_peer_relayed(&group, bob.id(), "the vault code is 1234").unwrap();
    assert!(eventually(|| redirect.intercepted_count() >= 1));
    world.network().clear_adversary();

    // Bob never gets the message (availability is lost — that is the one
    // thing a routing adversary can always do)…
    assert!(bob.receive_secure_messages().unwrap().is_empty());
    // …but the rogue holds only sealed bytes: the plaintext never appears,
    // and replaying the stolen relay into broker B from outside the
    // federation is rejected.
    let captured = rogue.poll_events();
    assert!(!captured.is_empty(), "the rogue did receive the diverted relay");
    let stolen = match &captured[0] {
        jxta_overlay::ClientEvent::Raw(message) => message.clone(),
        other => panic!("expected the raw relay, got {other:?}"),
    };
    let stolen_bytes = stolen.to_bytes();
    let plaintext = b"the vault code is 1234";
    assert!(
        !stolen_bytes
            .windows(plaintext.len())
            .any(|window| window == plaintext),
        "the diverted relay must only carry the sealed envelope"
    );
    let rejected_before = world.broker_at(1).federation_stats().rejected_unknown_origin;
    world
        .network()
        .send(rogue.id(), broker_b, stolen.to_bytes())
        .unwrap();
    assert!(eventually(|| {
        world.broker_at(1).federation_stats().rejected_unknown_origin > rejected_before
    }));
    assert!(bob.receive_secure_messages().unwrap().is_empty());
    world.shutdown();
}

#[test]
fn dropped_backbone_gossip_is_detectable_as_non_convergence() {
    // Gossip is fire-and-forget over the (reliable, in-process) channel
    // substrate; an adversary dropping a backbone edge therefore creates a
    // replica divergence that persists after the adversary leaves.  Without
    // a repair interval the federation *detects* it — converged() stays
    // false — which is the operator signal; the companion test below shows
    // the anti-entropy loop healing the same divergence.
    let mut world = federated_setup(45);
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);

    let dropper = EdgeAdversary::drop_all(broker_a, broker_b);
    world.network().set_adversary(dropper.clone());
    let mut alice = world.secure_client("alice");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    alice.publish_secure_pipe(&GroupId::new("ops")).unwrap();
    assert!(eventually(|| dropper.intercepted_count() >= 1));
    world.network().clear_adversary();

    // Broker B permanently missed the join and publish gossip.
    assert!(
        !world.federation().await_convergence(Duration::from_millis(200)),
        "a dropped gossip edge must be visible as divergence"
    );
    assert!(world.broker_at(1).home_of(&alice.id()).is_none());
    assert!(world
        .broker_at(1)
        .lookup(&GroupId::new("ops"), "jxta:PipeAdvertisement", Some(alice.id()))
        .is_empty());
    world.shutdown();
}

#[test]
fn dropped_backbone_gossip_heals_through_anti_entropy() {
    // The same adversarial drop as above, but the deployment runs the
    // periodic anti-entropy loop: once the adversary lifts, the divergence
    // heals unattended within a bounded number of repair intervals, with
    // the repaired state fully usable (routing, index and membership).
    let mut world = SecureNetworkBuilder::new(46)
        .with_key_bits(512)
        .with_broker_count(2)
        .with_repair_interval(Duration::from_millis(20))
        .with_user("alice", "s3cret-password", &["ops"])
        .with_user("bob", "bob-pw", &["ops"])
        .build();
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);
    let group = GroupId::new("ops");

    let dropper = EdgeAdversary::drop_all(broker_a, broker_b);
    world.network().set_adversary(dropper.clone());
    let mut alice = world.secure_client("alice");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    assert!(eventually(|| dropper.intercepted_count() >= 1));
    // Broker B missed the join and publish gossip while the edge was cut.
    assert!(world.broker_at(1).home_of(&alice.id()).is_none());
    world.network().clear_adversary();

    assert!(
        world.federation().await_convergence(Duration::from_secs(2)),
        "anti-entropy must reconverge the federation unattended"
    );
    assert_eq!(world.broker_at(1).home_of(&alice.id()), Some(broker_a));
    assert!(!world
        .broker_at(1)
        .lookup(&group, "jxta:PipeAdvertisement", Some(alice.id()))
        .is_empty());

    // The repaired state is usable end to end: bob joins at the healed
    // broker and messages alice across the backbone.
    let mut bob = world.secure_client("bob");
    bob.secure_join(broker_b, "bob", "bob-pw").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));
    bob.secure_msg_peer_relayed(&group, alice.id(), "healed and routed").unwrap();
    assert!(eventually(|| {
        alice
            .receive_secure_messages()
            .map(|m| m.iter().any(|m| m.text == "healed and routed"))
            .unwrap_or(false)
    }));

    // The healing went through the repair path and was counted.
    let repaired: u64 = (0..2)
        .map(|i| world.broker_at(i).federation_stats().entries_repaired)
        .sum();
    let mismatches: u64 = (0..2)
        .map(|i| world.broker_at(i).federation_stats().repair_mismatches)
        .sum();
    let rounds: u64 = (0..2)
        .map(|i| world.broker_at(i).federation_stats().repair_rounds)
        .sum();
    assert!(repaired > 0, "entries were repaired");
    assert!(mismatches > 0, "the divergence was detected via digests");
    assert!(rounds > 0, "repair rounds ran on the interval");
    world.shutdown();
}

#[test]
fn tampered_backbone_relay_is_dropped_end_to_end() {
    let mut world = federated_setup(44);
    let broker_a = world.broker_id_at(0);
    let broker_b = world.broker_id_at(1);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(broker_a, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker_b, "bob", "bob-pw").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(eventually(|| world.federation().converged()));

    let tamper = EdgeAdversary::tamper(broker_a, broker_b);
    world.network().set_adversary(tamper.clone());
    alice.secure_msg_peer_relayed(&group, bob.id(), "sign the contract").unwrap();
    assert!(eventually(|| tamper.intercepted_count() >= 1));
    world.network().clear_adversary();

    // The corrupted envelope fails decryption/authentication at bob, so the
    // message is never surfaced as authentic.
    std::thread::sleep(Duration::from_millis(50));
    assert!(bob.receive_secure_messages().unwrap().is_empty());

    // With the adversary gone the same primitive works again.
    alice.secure_msg_peer_relayed(&group, bob.id(), "second try").unwrap();
    assert!(eventually(|| {
        bob.receive_secure_messages()
            .map(|m| m.iter().any(|m| m.text == "second try"))
            .unwrap_or(false)
    }));
    world.shutdown();
}

#[test]
fn forged_advertisements_cannot_hijack_secure_messages() {
    // Bob (a legitimate user) forges a pipe advertisement claiming Alice's
    // identifier, trying to receive messages meant for her.
    use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
    let mut world = setup(23);
    let broker = world.broker_id();
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    let mut carol_like = world.secure_client("sender");
    alice.secure_join(broker, "alice", "s3cret-password").unwrap();
    bob.secure_join(broker, "bob", "bob-pw").unwrap();
    // The "sender" logs in as bob too (two devices, same account).
    carol_like.secure_join(broker, "bob", "bob-pw").unwrap();

    // Bob publishes a forged advertisement that claims to be Alice's pipe,
    // signed with his own legitimate credential.
    let forged = PipeAdvertisement {
        owner: alice.id(),
        group: group.clone(),
        name: "definitely-alice".into(),
    };
    let mut element = forged.to_element();
    jxta_overlay_secure::signed_adv::sign_advertisement(
        &mut element,
        bob.identity(),
        bob.credential().unwrap(),
    )
    .unwrap();
    bob.inner_mut()
        .publish_advertisement(&group, PipeAdvertisement::DOC_TYPE, &element.to_xml())
        .unwrap();

    // The sender tries to message Alice: the only advertisement available for
    // her identifier is the forged one, which fails validation, so no message
    // is ever sent with a key controlled by Bob.
    let result = carol_like.secure_msg_peer(&group, alice.id(), "for alice only");
    assert!(result.is_err());
    assert!(bob.receive_secure_messages().unwrap().is_empty());
}

// ----------------------------------------------------------------------
// Tree-repair batteries: adversaries on the epidemic (Plumtree) backbone
//
// The drop batteries above attack a two-broker mesh, where every event has
// exactly one path.  Once the federation engages the partial-view fabric,
// dissemination rides a pruned eager tree — so a dropped edge is no longer
// "the" path but "a" path, and the protocol owes us recovery through the
// lazy `IHave` → `Graft` channel, with hash-tree anti-entropy as the last
// resort when even that is cut.

mod tree_repair {
    use super::{EdgeAdversary, GroupId};
    use jxta_crypto::drbg::HmacDrbg;
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::metrics::FederationStats;
    use jxta_overlay::net::RandomDrop;
    use jxta_overlay::{LinkModel, PeerId, SimNetwork, UserDatabase};
    use std::collections::HashMap;
    use std::sync::Arc;

    const GROUP: &str = "ops";

    /// Builds an inline federation large enough (over small view capacities)
    /// that every broker engages the epidemic fabric, then runs a warm-up
    /// workload until duplicate digests have pruned the eager graph — so the
    /// lazy `IHave` links the batteries attack actually exist.
    fn epidemic_fixture(seed: u64, broker_count: usize) -> (Arc<SimNetwork>, InlineFederation) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        let brokers: Vec<Arc<Broker>> = (0..broker_count)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("b{i}")).with_view_capacities(3, 8),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let federation = InlineFederation::new(brokers);
        assert!(federation.broker(0).epidemic_engaged());

        let group = GroupId::new(GROUP);
        for round in 0..8 {
            for i in 0..federation.len() {
                federation.broker(i).index_and_distribute(
                    PeerId::random(&mut rng),
                    &group,
                    "jxta:PipeAdvertisement",
                    &format!("<warm r=\"{round}\" b=\"{i}\"/>"),
                );
                federation.pump();
                // Lazy digests batch until the repair tick now; the warm-up
                // wants the IHave -> Graft -> duplicate -> Prune cycle after
                // every publish, so drain them explicitly.
                flush_ihaves(&federation);
            }
            if backbone_stat(&federation, |s| s.prunes_sent) > 0 {
                break;
            }
        }
        assert!(federation.converged(), "warm-up workload converged");
        assert!(
            backbone_stat(&federation, |s| s.prunes_sent) > 0,
            "warm-up duplicates pruned the eager graph"
        );
        (network, federation)
    }

    fn backbone_stat(federation: &InlineFederation, pick: fn(&FederationStats) -> u64) -> u64 {
        (0..federation.len())
            .map(|i| pick(&federation.broker(i).federation_stats()))
            .sum()
    }

    /// Ships every broker's batched lazy `IHave` digests and pumps the
    /// deliveries (and the grafts they trigger) to quiescence.
    fn flush_ihaves(federation: &InlineFederation) {
        for i in 0..federation.len() {
            federation.broker(i).flush_ihaves();
        }
        federation.pump();
    }

    fn holds_advertisement(federation: &InlineFederation, index: usize, marker: &str) -> bool {
        federation
            .broker(index)
            .advertisement_snapshot()
            .iter()
            .any(|(_, _, _, xml)| xml.contains(marker))
    }

    /// Cut *every* eager in-edge of one broker mid-broadcast.  The victim can
    /// then only learn of the event through a lazy `IHave` digest, which it
    /// must answer with a `Graft` — the Plumtree repair path end to end.
    #[test]
    fn severed_eager_edges_recover_through_lazy_ihave_grafts() {
        let (network, federation) = epidemic_fixture(91, 10);
        let ids: Vec<PeerId> = (0..federation.len()).map(|i| federation.broker(i).id()).collect();

        // Invert the per-broker views into in-edge maps of the pruned tree.
        let mut in_eager: HashMap<PeerId, Vec<PeerId>> = HashMap::new();
        let mut in_lazy: HashMap<PeerId, Vec<PeerId>> = HashMap::new();
        for i in 0..federation.len() {
            let broker = federation.broker(i);
            for peer in broker.epidemic_eager_peers() {
                in_eager.entry(peer).or_default().push(broker.id());
            }
            for peer in broker.epidemic_lazy_peers() {
                in_lazy.entry(peer).or_default().push(broker.id());
            }
        }

        // A victim is attackable when all its eager in-edges can be cut while
        // at least one lazy in-edge (an `IHave` source) survives outside the
        // cut set.
        let (victim, scope) = ids
            .iter()
            .find_map(|v| {
                let eager_in = in_eager.get(v).cloned().unwrap_or_default();
                let lazy_in = in_lazy.get(v).cloned().unwrap_or_default();
                if eager_in.is_empty() || !lazy_in.iter().any(|l| !eager_in.contains(l)) {
                    return None;
                }
                let mut scope = eager_in;
                scope.push(*v);
                Some((*v, scope))
            })
            .expect("fixture yields a broker whose eager in-edges are cuttable");
        let victim_index = ids.iter().position(|id| *id == victim).unwrap();
        let origin = ids
            .iter()
            .position(|id| !scope.contains(id))
            .expect("an origin outside the cut set");

        let dropper = RandomDrop::between(17, 100, scope);
        network.set_adversary(dropper.clone());

        let grafts_before = backbone_stat(&federation, |s| s.grafts_sent);
        let mut rng = HmacDrbg::from_seed_u64(0xA11CE);
        federation.broker(origin).index_and_distribute(
            PeerId::random(&mut rng),
            &GroupId::new(GROUP),
            "jxta:PipeAdvertisement",
            "<healed/>",
        );
        federation.pump();
        flush_ihaves(&federation);

        assert!(dropper.dropped_count() > 0, "the eager in-edges did carry traffic");
        assert!(
            holds_advertisement(&federation, victim_index, "<healed/>"),
            "victim obtained the broadcast with every eager in-edge cut"
        );
        assert!(
            backbone_stat(&federation, |s| s.grafts_sent) > grafts_before,
            "recovery went through the IHave -> Graft channel"
        );

        // Brokers inside the cut set missed each other's traffic; once the
        // adversary lifts, anti-entropy settles the remainder.
        network.clear_adversary();
        assert!(federation.repair_until_converged(6).is_some());
    }

    /// A single cut eager edge: the broadcast routes around it — through the
    /// remaining eager forwards or a graft — and anti-entropy stays the last
    /// resort, not the first.
    #[test]
    fn a_single_cut_eager_edge_is_routed_around() {
        let (network, federation) = epidemic_fixture(92, 10);
        let eager = federation.broker(0).epidemic_eager_peers();
        assert!(!eager.is_empty(), "the origin has eager tree edges");
        let dropper = EdgeAdversary::drop_all(federation.broker(0).id(), eager[0]);
        network.set_adversary(dropper.clone());

        let mut rng = HmacDrbg::from_seed_u64(0xB0B);
        federation.broker(0).index_and_distribute(
            PeerId::random(&mut rng),
            &GroupId::new(GROUP),
            "jxta:PipeAdvertisement",
            "<around/>",
        );
        federation.pump();
        flush_ihaves(&federation);
        assert!(dropper.intercepted_count() > 0, "the cut edge was on the eager tree");

        network.clear_adversary();
        if !federation.converged() {
            assert!(
                federation.repair_until_converged(4).is_some(),
                "anti-entropy recovers what the tree could not re-route"
            );
        }
        assert!(federation.converged());
    }

    /// Black out the whole backbone mid-broadcast.  Plumtree has already
    /// flushed its one shot, so two repair layers race to heal the damage
    /// once the adversary lifts: the SWIM failure detector is the fast path
    /// (unanswered probes suspect the unreachable peers and repair the
    /// views, then refutation digs every live broker back out), and the
    /// hash-tree anti-entropy is the fallback that carries the event data
    /// itself.  Both must do their part — and nobody may stay falsely
    /// buried once the refutations land.
    #[test]
    fn blackout_broadcast_heals_through_swim_view_repair_and_anti_entropy() {
        let (network, federation) = epidemic_fixture(93, 9);
        let dropper = RandomDrop::new(5, 100);
        network.set_adversary(dropper.clone());

        let mut rng = HmacDrbg::from_seed_u64(0xEC11);
        federation.broker(0).index_and_distribute(
            PeerId::random(&mut rng),
            &GroupId::new(GROUP),
            "jxta:PipeAdvertisement",
            "<eclipse/>",
        );
        federation.pump();
        assert!(!federation.converged(), "a black-holed broadcast reaches nobody");
        assert!(dropper.dropped_count() > 0);

        // Keep the repair cadence running *during* the blackout: every
        // direct and indirect probe is eaten, so the SWIM fast path starts
        // suspecting unreachable peers — the view repair that, in a real
        // crash, evicts the dead broker long before anti-entropy notices.
        for _ in 0..4 {
            federation.repair();
        }
        assert!(
            backbone_stat(&federation, |s| s.swim_probes) > 0,
            "the repair cadence drives SWIM probes"
        );
        assert!(
            backbone_stat(&federation, |s| s.swim_suspicions) > 0,
            "a blacked-out backbone raises SWIM suspicions (the fast path engaged)"
        );

        // Lift the blackout.  Probe acks and alive-refutations clear the
        // false suspicions (everyone is actually alive) while anti-entropy
        // carries the black-holed event to the brokers eager push missed.
        network.clear_adversary();
        assert!(federation.repair_until_converged(10).is_some());
        for i in 0..federation.len() {
            assert!(holds_advertisement(&federation, i, "<eclipse/>"));
        }
        // No live broker stays buried: whatever Suspect/Dead verdicts the
        // blackout manufactured, refutation gossip and first-hand probe
        // contact dig back out.  The probe ring revisits a member every
        // `peers` ticks, so one full rotation (8 peers) plus slack bounds
        // the worst case even if every refutation broadcast were lost.
        for _ in 0..12 {
            federation.repair();
        }
        for i in 0..federation.len() {
            assert!(
                federation.broker(i).swim_dead_members().is_empty(),
                "broker {i} still holds a live peer dead after the blackout lifted"
            );
        }
    }
}
