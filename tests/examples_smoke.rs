//! Smoke tests compiling and running every example end to end, so the
//! examples cannot silently rot.
//!
//! Each example is included as a module via `#[path]` and its `main` is
//! invoked in-process — the same code `cargo run --example <name>` executes,
//! without re-entering cargo from inside the test run.

#[path = "../examples/quickstart.rs"]
mod quickstart_example;

#[path = "../examples/attack_demo.rs"]
mod attack_demo_example;

#[path = "../examples/file_sharing.rs"]
mod file_sharing_example;

#[path = "../examples/elearning_groups.rs"]
mod elearning_groups_example;

#[test]
fn quickstart_example_runs() {
    quickstart_example::main();
}

#[test]
fn attack_demo_example_runs() {
    attack_demo_example::main();
}

#[test]
fn file_sharing_example_runs() {
    file_sharing_example::main();
}

#[test]
fn elearning_groups_example_runs() {
    elearning_groups_example::main();
}
