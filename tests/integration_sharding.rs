//! Integration tests for the sharded broker federation: a 4-broker backbone
//! with K=2 replicas per `(group, owner)` entry serving secure clients.
//!
//! The scenarios mirror `integration_federation.rs`, but with the index and
//! group membership *partitioned* across the consistent-hash ring instead of
//! fully replicated: signed-advertisement searches may take an extra
//! `ShardQuery` hop to an owning replica, and the tests assert that the
//! end-to-end security properties (XMLdsig validation of replicated
//! advertisements, sealed relays, backbone admission control) survive that
//! hop unmodified, while per-broker state stays O(K).

use jxta_overlay::shard::ShardRing;
use jxta_overlay::{GroupId, Message, MessageKind, PeerId};
use jxta_overlay_secure::secure_client::{ReceivedSecureMessage, SecureClient};
use jxta_overlay_secure::setup::{SecureNetwork, SecureNetworkBuilder};
use jxta_overlay::clock::Deadline;
use std::time::Duration;

const K: usize = 2;
const BROKERS: usize = 4;

fn sharded_setup(seed: u64) -> SecureNetwork {
    SecureNetworkBuilder::new(seed)
        .with_key_bits(512)
        .with_broker_count(BROKERS)
        .with_replication_factor(K)
        .with_user("alice", "pw-a", &["ops"])
        .with_user("bob", "pw-b", &["ops"])
        .with_user("carol", "pw-c", &["ops"])
        .build()
}

/// Drains the client's secure inbox, polling until at least one message
/// arrives or the timeout expires.
fn receive_relayed(client: &mut SecureClient) -> Vec<ReceivedSecureMessage> {
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        let received = client.receive_secure_messages().unwrap();
        if !received.is_empty() || deadline.expired() {
            return received;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Polls `condition` until it holds or two seconds elapse.
fn eventually(mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Deadline::after(Duration::from_secs(2));
    loop {
        if condition() {
            return true;
        }
        if deadline.expired() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn sharded_federation_keeps_per_broker_state_o_of_k() {
    let mut world = sharded_setup(60);
    let group = GroupId::new("ops");
    let mut clients = Vec::new();
    for (i, (user, pw)) in [("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")]
        .iter()
        .enumerate()
    {
        let mut client = world.secure_client(user);
        client.secure_join(world.broker_id_at(i), user, pw).unwrap();
        client.publish_secure_pipe(&group).unwrap();
        clients.push(client);
    }
    assert!(
        world.federation().await_convergence(Duration::from_secs(2)),
        "sharded convergence: every entry on exactly its replica set"
    );

    // Three signed pipes × K replicas — not three × N brokers.
    let total: usize = (0..BROKERS)
        .map(|i| world.broker_at(i).advertisement_entry_count())
        .sum();
    assert_eq!(total, 3 * K, "each advertisement lives on exactly K brokers");
    for i in 0..BROKERS {
        assert!(
            world.broker_at(i).advertisement_entry_count() <= 3,
            "no broker holds more than the full set"
        );
    }
    // The routing table, in contrast, is fully replicated: every broker can
    // route to every client.
    for i in 0..BROKERS {
        for client in &clients {
            assert!(
                world.broker_at(i).home_of(&client.id()).is_some(),
                "broker {i} must know every peer's home"
            );
        }
    }
    world.shutdown();
}

#[test]
fn signed_advertisement_validation_survives_the_shard_query_hop() {
    let mut world = sharded_setup(61);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(world.broker_id_at(3), "bob", "pw-b").unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Alice resolves Bob's signed advertisement through *her* broker.  With
    // K=2 of 4 brokers holding it, the lookup either hits broker 0's shard
    // or crosses the backbone as a ShardQuery — in both cases the XMLdsig
    // envelope and embedded credential arrive verbatim and validate against
    // the same trust anchors.
    let validated = alice.resolve_secure_pipe(&group, bob.id()).unwrap();
    assert_eq!(validated.advertisement.owner, bob.id());
    assert_eq!(validated.credential.subject_name, "bob");
    validated
        .credential
        .verify(world.broker_extension_at(3).identity().public_key())
        .unwrap();

    // The shard metrics prove the routing happened (hit or miss, the query
    // was served by the sharded index).
    let hits: u64 = (0..BROKERS)
        .map(|i| world.broker_at(i).federation_stats().shard_hits)
        .sum();
    let misses: u64 = (0..BROKERS)
        .map(|i| world.broker_at(i).federation_stats().shard_misses)
        .sum();
    assert!(hits + misses >= 1, "the lookup went through the shard layer");
    world.shutdown();
}

#[test]
fn encrypted_relay_and_membership_queries_work_across_shards() {
    let mut world = sharded_setup(62);
    let group = GroupId::new("ops");

    let mut alice = world.secure_client("alice");
    let mut bob = world.secure_client("bob");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    bob.secure_join(world.broker_id_at(2), "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // Membership queries route to an owning replica transparently.
    assert!(alice.query_membership(&group, bob.id()).unwrap());
    let stranger_id = {
        let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(0x62);
        PeerId::random(&mut rng)
    };
    assert!(!alice.query_membership(&group, stranger_id).unwrap());

    // Sealed envelope across the backbone: alice → broker 0 → broker 2 → bob.
    alice
        .secure_msg_peer_relayed(&group, bob.id(), "sharded rendezvous")
        .unwrap();
    let received = receive_relayed(&mut bob);
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].text, "sharded rendezvous");
    assert_eq!(received[0].sender_username, "alice");
    assert!(eventually(|| {
        world.broker_at(2).federation_stats().relays_delivered == 1
    }));
    world.shutdown();
}

#[test]
fn shard_queries_from_unknown_origins_are_rejected() {
    let mut world = sharded_setup(63);
    let group = GroupId::new("ops");
    let mut alice = world.secure_client("alice");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // A rogue peer (never admitted to the backbone) asks a broker for its
    // shard directly — the same admission control that guards gossip and
    // relays refuses it, and no data flows back.
    let mut rogue = world.plain_client("rogue");
    let forged = Message::new(MessageKind::ShardQuery, rogue.id(), 0)
        .with_str("seq", "1")
        .with_str("query", "1")
        .with_str("group", "ops")
        .with_str("doc-type", "jxta:PipeAdvertisement");
    world
        .network()
        .send(rogue.id(), world.broker_id_at(0), forged.to_bytes())
        .unwrap();
    assert!(eventually(|| {
        world.broker_at(0).federation_stats().rejected_unknown_origin >= 1
    }));
    assert!(
        rogue.poll_events().is_empty(),
        "no shard response for an unadmitted origin"
    );

    // Same for a forged ShardResponse trying to poison a pending lookup.
    let forged = Message::new(MessageKind::ShardResponse, rogue.id(), 0)
        .with_str("seq", "2")
        .with_str("query", "1")
        .with_str("count", "0");
    world
        .network()
        .send(rogue.id(), world.broker_id_at(0), forged.to_bytes())
        .unwrap();
    assert!(eventually(|| {
        world.broker_at(0).federation_stats().rejected_unknown_origin >= 2
    }));
    world.shutdown();
}

#[test]
fn expired_credential_is_refused_by_brokers() {
    let mut world = sharded_setup(64);
    let group = GroupId::new("ops");
    let mut alice = world.secure_client("alice");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    let lifetime = jxta_overlay_secure::admin::DEFAULT_CREDENTIAL_LIFETIME;
    assert!(
        !alice.credential().unwrap().is_expired(lifetime),
        "credential valid through its lifetime"
    );

    // Time passes beyond every credential's lifetime.
    world.set_time(lifetime + 1);

    // The broker refuses to index a signed advertisement carrying the now-
    // expired credential (this is the hole: before this PR, nothing on the
    // broker side ever called `Credential::is_expired`).
    let err = alice.publish_secure_pipe(&group).unwrap_err();
    assert!(err.to_string().contains("expired"), "{err}");
    assert!(world.broker_extension_at(0).stats().expired_rejected >= 1);

    // And a broker whose own credential lapsed refuses secureConnection
    // (it could no longer prove its legitimacy anyway).
    let mut late = world.secure_client("late");
    let err = late.secure_connection(world.broker_id_at(1)).unwrap_err();
    assert!(err.to_string().contains("expired"), "{err}");
    world.shutdown();
}

#[test]
fn revoked_credential_is_refused_by_brokers() {
    let mut world = sharded_setup(65);
    let group = GroupId::new("ops");
    let mut alice = world.secure_client("alice");
    let mut mallory = world.secure_client("mallory-laptop");
    alice.secure_join(world.broker_id_at(0), "alice", "pw-a").unwrap();
    mallory.secure_join(world.broker_id_at(1), "bob", "pw-b").unwrap();
    mallory.publish_secure_pipe(&group).unwrap();
    assert!(world.federation().await_convergence(Duration::from_secs(2)));

    // The administrator revokes bob's account and mallory's peer identity
    // and pushes the signed list to every broker of the federation.
    world.revoke(&[mallory.id()], &["bob"]);

    // The still-open session cannot publish signed advertisements any more…
    let err = mallory.publish_secure_pipe(&group).unwrap_err();
    assert!(err.to_string().contains("revoked"), "{err}");
    // …and re-joining anywhere in the federation is refused too.
    let mut fresh = world.secure_client("mallory-desktop");
    let result = fresh.secure_join(world.broker_id_at(2), "bob", "pw-b");
    assert!(result.is_err(), "revoked user must not obtain a credential");
    let revoked_rejections: u64 = (0..BROKERS)
        .map(|i| world.broker_extension_at(i).stats().revoked_rejected)
        .sum();
    assert!(revoked_rejections >= 2);

    // Alice is untouched.
    alice.publish_secure_pipe(&group).unwrap();
    world.shutdown();
}

#[test]
fn ring_placement_is_identical_on_every_broker() {
    // The ring is deterministic and seedless: every broker, given the same
    // membership, must compute the same replica set for any key — otherwise
    // routing would disagree with placement.
    let world = sharded_setup(66);
    let group = GroupId::new("ops");
    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(0x66);
    for _ in 0..20 {
        let owner = PeerId::random(&mut rng);
        let reference = world.broker_at(0).shard_replicas(&group, &owner);
        assert_eq!(reference.len(), K);
        for i in 1..BROKERS {
            assert_eq!(
                world.broker_at(i).shard_replicas(&group, &owner),
                reference,
                "broker {i} disagrees on placement"
            );
        }
    }
    // And an independently built ring over the same ids agrees as well.
    let mut ring = ShardRing::new(K);
    for i in 0..BROKERS {
        ring.insert(world.broker_id_at(i));
    }
    let owner = PeerId::random(&mut rng);
    assert_eq!(
        ring.replicas(&group, &owner),
        world.broker_at(0).shard_replicas(&group, &owner)
    );
    world.shutdown();
}
