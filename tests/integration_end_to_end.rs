//! End-to-end scenario test: a small e-learning deployment exercising every
//! secure primitive together, plus the experiment harness's invariants.

use jxta_bench::{
    experiment_join_overhead, experiment_msg_overhead, ExperimentConfig,
};
use jxta_overlay::net::LinkModel;
use jxta_overlay::GroupId;
use jxta_overlay_secure::setup::SecureNetworkBuilder;

#[test]
fn full_classroom_scenario() {
    let mut setup = SecureNetworkBuilder::new(30)
        .with_key_bits(512)
        .with_link(LinkModel::lan())
        .with_user("teacher", "pw-t", &["class"])
        .with_user("s1", "pw-1", &["class"])
        .with_user("s2", "pw-2", &["class"])
        .with_user("s3", "pw-3", &["class"])
        .build();
    let broker = setup.broker_id();
    let class = GroupId::new("class");

    let mut teacher = setup.secure_client("teacher");
    teacher.secure_join(broker, "teacher", "pw-t").unwrap();
    teacher.publish_secure_pipe(&class).unwrap();

    let mut students: Vec<_> = (1..=3)
        .map(|i| {
            let mut student = setup.secure_client(&format!("student-{i}"));
            student
                .secure_join(broker, &format!("s{i}"), &format!("pw-{i}"))
                .unwrap();
            student.publish_secure_pipe(&class).unwrap();
            student
        })
        .collect();

    // Group announcement (sequential) and a follow-up (parallel).
    let (sent, _) = teacher.secure_msg_peer_group(&class, "welcome to the course").unwrap();
    assert_eq!(sent, 3);
    let (sent, _) = teacher
        .secure_msg_peer_group_parallel(&class, "first assignment is out")
        .unwrap();
    assert_eq!(sent, 3);

    // Every student receives both, authenticated as coming from the teacher,
    // and answers privately.
    for (i, student) in students.iter_mut().enumerate() {
        let received = student.receive_secure_messages().unwrap();
        let texts: Vec<_> = received.iter().map(|m| m.text.clone()).collect();
        assert!(texts.contains(&"welcome to the course".to_string()));
        assert!(texts.contains(&"first assignment is out".to_string()));
        assert!(received.iter().all(|m| m.sender_username == "teacher"));
        student
            .secure_msg_peer(&class, teacher.id(), &format!("question from student {i}"))
            .unwrap();
    }
    let questions = teacher.receive_secure_messages().unwrap();
    assert_eq!(questions.len(), 3);

    // The broker saw exactly four secure logins and issued four credentials.
    assert_eq!(setup.broker_extension().stats().credentials_issued, 4);
    assert_eq!(setup.broker().session_count(), 4);
}

#[test]
fn experiment_e1_shape_holds() {
    // The reproduction claim for E1: the secure join is more expensive than
    // the plain join by a substantial factor (the paper reports +81.76%).
    let result = experiment_join_overhead(&ExperimentConfig::quick());
    assert!(
        result.overhead_percent > 20.0,
        "secure join should be substantially more expensive, got {:.2}%",
        result.overhead_percent
    );
}

#[test]
fn experiment_e2_shape_holds() {
    // The reproduction claim for Figure 2: relative overhead decreases
    // monotonically-ish as the payload grows (latency/bandwidth dominate).
    let config = ExperimentConfig {
        iterations: 3,
        ..ExperimentConfig::quick()
    };
    let rows = experiment_msg_overhead(&config, &[512, 64 << 10, 1 << 20]);
    assert_eq!(rows.len(), 3);
    assert!(
        rows.first().unwrap().overhead_percent > rows.last().unwrap().overhead_percent,
        "overhead must decay from smallest to largest payload: {rows:?}"
    );
    for row in &rows {
        assert!(row.secure.mean_ms >= row.plain.mean_ms * 0.5, "sanity: {row:?}");
    }
}

#[test]
fn identically_seeded_deployments_are_identical() {
    // Every RNG in the test suite is explicitly seeded — no OS entropy — so
    // two deployments built from the same seed must agree bit-for-bit on all
    // derived identities.  This is what makes any integration failure
    // reproducible from its seed alone.
    let build = || {
        SecureNetworkBuilder::new(0xD37E)
            .with_key_bits(512)
            .with_user("carol", "pw-c", &["repro"])
            .build()
    };
    let mut a = build();
    let mut b = build();
    assert_eq!(a.broker_id(), b.broker_id());

    let broker = a.broker_id();
    let mut carol_a = a.secure_client("carol-dev");
    let mut carol_b = b.secure_client("carol-dev");
    assert_eq!(carol_a.id(), carol_b.id());
    carol_a.secure_join(broker, "carol", "pw-c").unwrap();
    carol_b.secure_join(b.broker_id(), "carol", "pw-c").unwrap();
    // Compare the full serialised credentials: subject, public key, issuer
    // signature and validity must all be derived identically from the seed.
    assert_eq!(
        carol_a.credential().unwrap().to_bytes(),
        carol_b.credential().unwrap().to_bytes()
    );
}
