//! Integration tests for secureMsgPeer / secureMsgPeerGroup across the full
//! stack (broker-distributed signed advertisements, envelopes, signatures).

use jxta_overlay::net::LinkModel;
use jxta_overlay::GroupId;
use jxta_overlay_secure::setup::SecureNetworkBuilder;

#[test]
fn secure_messages_flow_in_both_directions() {
    let mut setup = SecureNetworkBuilder::new(10)
        .with_key_bits(512)
        .with_user("alice", "pw-a", &["chat"])
        .with_user("bob", "pw-b", &["chat"])
        .build();
    let broker = setup.broker_id();
    let group = GroupId::new("chat");
    let mut alice = setup.secure_client("alice");
    let mut bob = setup.secure_client("bob");
    alice.secure_join(broker, "alice", "pw-a").unwrap();
    bob.secure_join(broker, "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();

    alice.secure_msg_peer(&group, bob.id(), "ping").unwrap();
    let at_bob = bob.receive_secure_messages().unwrap();
    assert_eq!(at_bob.len(), 1);
    assert_eq!(at_bob[0].text, "ping");
    assert_eq!(at_bob[0].sender_username, "alice");

    bob.secure_msg_peer(&group, alice.id(), "pong").unwrap();
    let at_alice = alice.receive_secure_messages().unwrap();
    assert_eq!(at_alice.len(), 1);
    assert_eq!(at_alice[0].text, "pong");
    assert_eq!(at_alice[0].sender_username, "bob");
}

#[test]
fn large_payloads_survive_the_secure_path() {
    let mut setup = SecureNetworkBuilder::new(11)
        .with_key_bits(512)
        .with_link(LinkModel::lan())
        .with_user("alice", "pw-a", &["bulk"])
        .with_user("bob", "pw-b", &["bulk"])
        .build();
    let broker = setup.broker_id();
    let group = GroupId::new("bulk");
    let mut alice = setup.secure_client("alice");
    let mut bob = setup.secure_client("bob");
    alice.secure_join(broker, "alice", "pw-a").unwrap();
    bob.secure_join(broker, "bob", "pw-b").unwrap();
    alice.publish_secure_pipe(&group).unwrap();
    bob.publish_secure_pipe(&group).unwrap();

    let payload: String = std::iter::repeat_n("0123456789abcdef", 64 * 1024 / 16).collect();
    assert_eq!(payload.len(), 64 * 1024);
    let timing = alice.secure_msg_peer(&group, bob.id(), &payload).unwrap();
    assert!(timing.wire > std::time::Duration::ZERO, "LAN link charges wire time");
    let received = bob.receive_secure_messages().unwrap();
    assert_eq!(received[0].text.len(), payload.len());
    assert_eq!(received[0].text, payload);
}

#[test]
fn group_broadcast_respects_membership_boundaries() {
    let mut setup = SecureNetworkBuilder::new(12)
        .with_key_bits(512)
        .with_user("teacher", "pw-t", &["course", "staff"])
        .with_user("student", "pw-s", &["course"])
        .with_user("dean", "pw-d", &["staff"])
        .build();
    let broker = setup.broker_id();
    let course = GroupId::new("course");
    let staff = GroupId::new("staff");

    let mut teacher = setup.secure_client("teacher");
    let mut student = setup.secure_client("student");
    let mut dean = setup.secure_client("dean");
    teacher.secure_join(broker, "teacher", "pw-t").unwrap();
    student.secure_join(broker, "student", "pw-s").unwrap();
    dean.secure_join(broker, "dean", "pw-d").unwrap();
    teacher.publish_secure_pipe(&course).unwrap();
    teacher.publish_secure_pipe(&staff).unwrap();
    student.publish_secure_pipe(&course).unwrap();
    dean.publish_secure_pipe(&staff).unwrap();

    let (sent, _) = teacher.secure_msg_peer_group(&staff, "salary data").unwrap();
    assert_eq!(sent, 1, "only the dean is in staff");
    assert!(student.receive_secure_messages().unwrap().is_empty());
    let at_dean = dean.receive_secure_messages().unwrap();
    assert_eq!(at_dean.len(), 1);
    assert_eq!(at_dean[0].text, "salary data");

    // The student cannot broadcast into a group they do not belong to.
    assert!(student.secure_msg_peer_group(&staff, "curious").is_err());
}

#[test]
fn client_sig_cache_skips_rsa_on_repeat_validations() {
    let mut setup = SecureNetworkBuilder::new(14)
        .with_key_bits(512)
        .with_user("alice", "pw-a", &["math", "chem"])
        .with_user("bob", "pw-b", &["math", "chem"])
        .build();
    let broker = setup.broker_id();
    let math = GroupId::new("math");
    let chem = GroupId::new("chem");
    let mut alice = setup.secure_client("alice");
    let mut bob = setup.secure_client("bob");
    alice.secure_join(broker, "alice", "pw-a").unwrap();
    bob.secure_join(broker, "bob", "pw-b").unwrap();
    bob.publish_secure_pipe(&math).unwrap();
    bob.publish_secure_pipe(&chem).unwrap();

    // First validation of one of bob's advertisements pays RSA for the
    // credential chain and the XMLdsig check.
    assert_eq!(alice.sig_cache_stats().hits, 0);
    alice.resolve_secure_pipe(&math, bob.id()).unwrap();
    let first = alice.sig_cache_stats();
    assert!(first.misses > 0, "first validation computes RSA: {first:?}");
    assert_eq!(first.hits, 0);

    // Bob's advertisement in the *other* group misses `validated_pipes`
    // (different bytes, different signature) but embeds the identical
    // credential — whose chain verification now comes from the cache.
    alice.resolve_secure_pipe(&chem, bob.id()).unwrap();
    let second = alice.sig_cache_stats();
    assert!(
        second.hits > first.hits,
        "the shared credential's chain check must hit the sig cache: {second:?}"
    );

    // A repeat resolve is answered from `validated_pipes`: no RSA at all.
    alice.resolve_secure_pipe(&math, bob.id()).unwrap();
    assert_eq!(alice.sig_cache_stats().misses, second.misses);
}

#[test]
fn plain_and_secure_traffic_coexist() {
    // The extension is additive: plain peers keep working on the same
    // network and broker while secure peers exchange protected traffic.
    let mut setup = SecureNetworkBuilder::new(13)
        .with_key_bits(512)
        .with_user("alice", "pw-a", &["mixed"])
        .with_user("bob", "pw-b", &["mixed"])
        .with_user("carol", "pw-c", &["mixed"])
        .build();
    let broker = setup.broker_id();
    let group = GroupId::new("mixed");

    let mut plain_alice = setup.plain_client("plain-alice");
    plain_alice.connect(broker).unwrap();
    plain_alice.login("alice", "pw-a").unwrap();
    plain_alice.publish_pipe(&group).unwrap();

    let mut plain_bob = setup.plain_client("plain-bob");
    plain_bob.connect(broker).unwrap();
    plain_bob.login("bob", "pw-b").unwrap();
    plain_bob.publish_pipe(&group).unwrap();

    let mut secure_carol = setup.secure_client("secure-carol");
    secure_carol.secure_join(broker, "carol", "pw-c").unwrap();
    secure_carol.publish_secure_pipe(&group).unwrap();

    // Plain-to-plain text still works.
    plain_alice.send_msg_peer(&group, plain_bob.id(), "old-style hello").unwrap();
    let events = plain_bob.poll_events();
    assert!(events.iter().any(|e| matches!(
        e,
        jxta_overlay::ClientEvent::Text { text, .. } if text == "old-style hello"
    )));

    // A secure peer's signed advertisement is still a perfectly valid pipe
    // advertisement for a plain peer (original type preserved), so plain
    // peers can message secure peers in the clear if they choose to.
    plain_alice.send_msg_peer(&group, secure_carol.id(), "clear text to carol").unwrap();
    let carol_plain = secure_carol.receive_secure_messages().unwrap();
    assert!(carol_plain.is_empty(), "clear text is not a secure message");
    let others = secure_carol.drain_other_events();
    assert!(others.iter().any(|e| matches!(
        e,
        jxta_overlay::ClientEvent::Text { text, .. } if text == "clear text to carol"
    )));
}
