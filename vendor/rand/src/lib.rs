//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: the [`RngCore`] /
//! [`CryptoRng`] / [`SeedableRng`] traits, [`rngs::StdRng`] (a deterministic
//! xoshiro256** generator) and [`rngs::OsRng`] (reads `/dev/urandom`, with a
//! time-based fallback).  It is **not** the upstream crate; swap it out by
//! pointing the workspace dependency back at crates.io when network access is
//! available.

#![forbid(unsafe_code)]
// Entropy seeding reads the clock by design.
#![allow(clippy::disallowed_methods)]

use std::fmt;

/// Error type returned by fallible RNG operations.
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random number generator trait (rand 0.8 shape).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{CryptoRng, Error, RngCore, SeedableRng};

    /// A deterministic pseudo-random generator (xoshiro256**).
    ///
    /// Unlike the upstream `StdRng` (ChaCha-based) this is not
    /// cryptographically secure, but every use in this workspace is for
    /// reproducible tests and simulations, which only need statistical
    /// quality and determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_raw().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    /// A generator drawing from operating-system entropy.
    ///
    /// Reads `/dev/urandom`; if that is unavailable it falls back to hashing
    /// the current time and a process-local counter, which is sufficient for
    /// the simulator (tests never use OS entropy at all).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            let mut buf = [0u8; 4];
            self.fill_bytes(&mut buf);
            u32::from_le_bytes(buf)
        }

        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            self.fill_bytes(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            use std::io::Read;
            if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
                if f.read_exact(dest).is_ok() {
                    return;
                }
            }
            // Fallback: time + counter mixed through SplitMix64.
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let mut state = now ^ COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0xA24B_AED4_963E_E407);
            for chunk in dest.chunks_mut(8) {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let bytes = z.to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl CryptoRng for OsRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
