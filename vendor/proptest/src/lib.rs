//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `prop_recursive`, [`collection::vec`],
//! [`array::uniform16`], [`option::of`], [`prop_oneof!`], integer-range and
//! regex-literal strategies, and the `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs'
//!   debug representation instead of a minimised counter-example.
//! * **Fully deterministic** — each test derives its RNG seed from the test
//!   function's name, so failures always reproduce and `cargo test` never
//!   touches OS entropy.
//! * Only the regex subset `[class]`, `{m,n}`, `{n}`, `*`, `+`, `?` and
//!   literal characters is supported by string strategies.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner and its configuration.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Maximum number of rejected (`prop_assume!`/filter) cases allowed
        /// per successful case before the runner gives up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps this workspace's suite
            // (which exercises RSA and XML signing per case) fast.
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case was rejected by `prop_assume!` or a filter; it does not
        /// count towards the required number of cases.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic random source driving all strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates an RNG whose seed is derived from `name` (typically the
        /// test function name), making every run reproducible.
        pub fn deterministic(name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            "jxta-proptest-v1".hash(&mut hasher);
            name.hash(&mut hasher);
            TestRng(StdRng::seed_from_u64(hasher.finish()))
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.0.next_u64() % bound as u64) as usize
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// Runs `case` until `config.cases` successful cases have accumulated.
    /// Panics on the first failing case.
    pub fn run(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        let mut rng = TestRng::deterministic(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases ({rejected}); last reason: {reason}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed after {passed} passing case(s): {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }

        /// Keeps only values for which `f` returns true, regenerating
        /// otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                strategy: self,
                reason: reason.into(),
                f,
            }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy for
        /// the previous depth level and returns the strategy for the next.
        /// `depth` bounds the recursion; the size/branch hints are accepted
        /// for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current.clone()).boxed();
                let leaf = leaf.clone();
                current = BoxedStrategy::from_fn(move |rng| {
                    // Mix leaves back in at every level so trees vary in
                    // depth, not just width.
                    if rng.next_u32() % 4 == 0 {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                });
            }
            current
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strategy = self;
            BoxedStrategy::from_fn(move |rng| strategy.generate(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        generator: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy {
                generator: Rc::new(f),
            }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                generator: Rc::clone(&self.generator),
            }
        }
    }

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generator)(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        strategy: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..4096 {
                let value = self.strategy.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter '{}' rejected 4096 consecutive values", self.reason);
        }
    }

    /// Uniform choice between strategies; built by [`prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )+};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    /// Values with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Bias towards ASCII, occasionally produce any scalar value.
            if !rng.next_u32().is_multiple_of(4) {
                (0x20u8 + (rng.next_u32() % 0x5F) as u8) as char
            } else {
                loop {
                    if let Some(c) = char::from_u32(rng.next_u32() % 0x11_0000) {
                        return c;
                    }
                }
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_regex(self, rng)
        }
    }
}

pub mod string {
    //! Generation of strings from a small regex subset.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    /// Generates a string matching `pattern`, which may use literal
    /// characters, `[a-z_.-]` classes and the quantifiers `{m}`, `{m,n}`,
    /// `*`, `+`, `?`.
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (atom, next) = parse_atom(&chars, i, pattern);
            i = next;
            let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            let count = if lo == hi { lo } else { lo + rng.below(hi - lo + 1) };
            for _ in 0..count {
                out.push(atom.generate(rng));
            }
        }
        out
    }

    impl Atom {
        fn generate(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.below(total as usize) as u32;
                    for (lo, hi) in ranges {
                        let size = *hi as u32 - *lo as u32 + 1;
                        if pick < size {
                            return char::from_u32(*lo as u32 + pick).expect("class range is valid");
                        }
                        pick -= size;
                    }
                    unreachable!("pick is within total")
                }
            }
        }
    }

    fn parse_atom(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
        match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a trailing `-` is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in regex {pattern:?}");
                (Atom::Class(ranges), i + 1)
            }
            '\\' => (Atom::Literal(chars[i + 1]), i + 2),
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex construct {c:?} in {pattern:?} (vendored proptest)"
                );
                (Atom::Literal(c), i + 1)
            }
        }
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `[S::Value; 16]`.
    pub struct Uniform16<S>(S);

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Generates 16-element arrays of values from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u32().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Generates `Some` values from `element` (and `None` a quarter of the
    /// time).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $(let $arg = $strategy;)+
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, rng);)+
                let case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                case()
            });
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = TestRng::deterministic("regex_strategy_matches_shape");
        for _ in 0..100 {
            let s = Strategy::generate(&"[A-Za-z][A-Za-z0-9_.-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let strategy = crate::collection::vec(any::<u8>(), 0..16);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, v in crate::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.clone().len());
            prop_assert_ne!(v.len(), 0, "vec is non-empty by construction");
            prop_assume!(x != 99);
        }

        #[test]
        fn oneof_and_option_work(c in prop_oneof![Just('a'), Just('b')], o in crate::option::of(0u8..10)) {
            prop_assert!(c == 'a' || c == 'b');
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }
}
