//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset this workspace uses:
//!
//! * [`channel`] — multi-producer multi-consumer channels
//!   (`unbounded`/`bounded`, `Sender`, `Receiver`) plus a polling
//!   [`select!`] implementation for the two-arm `recv(..) -> .. => ..` form.
//! * [`thread`] — `thread::scope` built on `std::thread::scope`, with the
//!   crossbeam-style `Result` return and `spawn(|_| ..)` closure shape.

#![forbid(unsafe_code)]
// Vendored stand-in: raw std locks and clock reads are its implementation.
#![allow(clippy::disallowed_methods)]

pub mod channel {
    //! MPMC channels with an API modelled on `crossbeam-channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `Some(n)` caps the queue at `n` messages (bounded channel);
        /// `None` never blocks a sender.
        capacity: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        available: Condvar,
        /// Signalled when a bounded queue makes room (a message was consumed
        /// or every receiver disappeared).
        space: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("timed out waiting on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make_channel(None)
    }

    /// Creates a bounded MPMC channel: at most `capacity` messages are queued
    /// at any time, and senders block (or fail, for the `try_send` /
    /// `send_timeout` variants) while the queue is full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        make_channel(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is at capacity and
        /// failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.capacity.is_none_or(|cap| state.queue.len() < cap) {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.available.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .space
                    .wait(state)
                    .expect("channel state poisoned");
            }
        }

        /// Sends `value` if the channel has room, failing immediately with
        /// [`TrySendError::Full`] otherwise.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.capacity.is_some_and(|cap| state.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Sends `value`, giving up with [`SendTimeoutError::Timeout`] if the
        /// channel is still full after `timeout`.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if state.capacity.is_none_or(|cap| state.queue.len() < cap) {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.available.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (guard, _timeout_result) = self
                    .shared
                    .space
                    .wait_timeout(state, deadline - now)
                    .expect("channel state poisoned");
                state = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel state poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available or every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .available
                    .wait(state)
                    .expect("channel state poisoned");
            }
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .available
                    .wait_timeout(state, deadline - now)
                    .expect("channel state poisoned");
                state = guard;
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel state poisoned");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Returns an iterator draining the messages currently queued,
        /// without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Returns a blocking iterator that ends when the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel state poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel state poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let disconnected = {
                let mut state = self.shared.state.lock().expect("channel state poisoned");
                state.receivers -= 1;
                state.receivers == 0
            };
            if disconnected {
                // Wake senders blocked on a full bounded queue so they can
                // observe the disconnection instead of waiting forever.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Waits on two `recv` arms, running the body of whichever becomes ready
    /// first (polling implementation of the crossbeam-channel macro for the
    /// two-arm form this workspace uses).
    ///
    /// When every involved channel is disconnected the first arm observing
    /// disconnection receives `Err(RecvError)`, matching crossbeam's
    /// behaviour of completing a `recv` operation with an error.
    #[macro_export]
    macro_rules! select {
        (
            recv($rx1:expr) -> $pat1:pat => $body1:expr,
            recv($rx2:expr) -> $pat2:pat => $body2:expr $(,)?
        ) => {{
            let __sel_rx1 = &$rx1;
            let __sel_rx2 = &$rx2;
            let mut __sel_v1 = ::core::option::Option::None;
            let mut __sel_v2 = ::core::option::Option::None;
            loop {
                match __sel_rx1.try_recv() {
                    ::core::result::Result::Ok(value) => {
                        __sel_v1 = ::core::option::Option::Some(::core::result::Result::Ok(value));
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        __sel_v1 = ::core::option::Option::Some(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                match __sel_rx2.try_recv() {
                    ::core::result::Result::Ok(value) => {
                        __sel_v2 = ::core::option::Option::Some(::core::result::Result::Ok(value));
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        __sel_v2 = ::core::option::Option::Some(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                ::std::thread::sleep(::std::time::Duration::from_micros(50));
            }
            if let ::core::option::Option::Some(__sel_res) = __sel_v1 {
                let $pat1 = __sel_res;
                $body1
            } else if let ::core::option::Option::Some(__sel_res) = __sel_v2 {
                let $pat2 = __sel_res;
                $body2
            } else {
                ::core::unreachable!()
            }
        }};
    }

    // Re-export so `crossbeam::channel::select!` resolves like upstream.
    pub use crate::select;
}

pub mod thread {
    //! Scoped threads with the crossbeam API shape.

    use std::fmt;

    /// Handle passed to scoped-thread closures.
    ///
    /// The workspace only ever spawns from the outer scope (`|_|` closures),
    /// so this handle intentionally does not allow nested spawning.
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope(());

    /// A scope in which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  The closure receives a placeholder scope
        /// handle, mirroring crossbeam's `|scope| ..` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope(()))),
            }
        }
    }

    impl fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Scope { .. }")
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that borrow from the enclosing
    /// environment.  Returns `Ok` with the closure's result; a panic in a
    /// spawned thread propagates when the scope joins, as with upstream
    /// crossbeam when handles are not individually joined.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn select_picks_ready_arm() {
        let (tx1, rx1) = channel::unbounded::<u32>();
        let (_tx2, rx2) = channel::unbounded::<u32>();
        tx1.send(7).unwrap();
        let got = crate::select! {
            recv(rx1) -> msg => msg.unwrap(),
            recv(rx2) -> _ => unreachable!(),
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_reports_disconnect() {
        let (tx1, rx1) = channel::unbounded::<u32>();
        let (tx2, rx2) = channel::unbounded::<u32>();
        drop(tx1);
        drop(tx2);
        let disconnected = crate::select! {
            recv(rx1) -> msg => msg.is_err(),
            recv(rx2) -> _ => false,
        };
        assert!(disconnected);
    }

    #[test]
    fn bounded_channel_enforces_capacity() {
        use std::time::Duration;
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(channel::TrySendError::Full(3))));
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(channel::SendTimeoutError::Timeout(3))
        ));
        // Consuming a message makes room again.
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);

        // A blocked sender wakes up when the consumer drains the queue.
        tx.try_send(10).unwrap();
        tx.try_send(11).unwrap();
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || tx2.send(12));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv(), Ok(10));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![11, 12]);

        // Dropping the only receiver unblocks and fails pending sends.
        tx.try_send(20).unwrap();
        tx.try_send(21).unwrap();
        let tx3 = tx.clone();
        let handle = std::thread::spawn(move || tx3.send(22));
        std::thread::sleep(Duration::from_millis(5));
        drop(rx);
        assert!(handle.join().unwrap().is_err());
        assert!(matches!(
            tx.try_send(23),
            Err(channel::TrySendError::Disconnected(23))
        ));
    }

    #[test]
    fn scoped_threads_return_values() {
        let data = [1u32, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
