//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! tree as JSON text.  Only the serialisation entry points this workspace
//! uses are provided.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error (the vendored renderer is infallible, but the
/// signature mirrors upstream `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: emit a decimal point for integral floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) =>
            write_seq(out, items.iter(), items.len(), indent, level, ('[', ']'), |out, item, indent, level| {
                write_value(out, item, indent, level);
            }),
        Value::Object(entries) =>
            write_seq(out, entries.iter(), entries.len(), indent, level, ('{', '}'), |out, (key, item), indent, level| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level);
            }),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_item(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(brackets.1);
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Uint(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(to_string(&Wrapper(v)).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let pretty = to_string_pretty(&vec![1u8, 2]).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
