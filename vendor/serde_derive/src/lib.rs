//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for plain (non-generic) structs with
//! named fields — the only shape this workspace derives — by hand-parsing the
//! item token stream (no `syn`/`quote`, which are unavailable offline).  The
//! generated impl converts the struct into a `serde::Value::Object` with one
//! entry per field, in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a plain struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Skip attributes (`#[...]`) and visibility, find `struct <Name>`.
    let mut i = 0;
    let mut name: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracketed group.
                i += 2;
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match name {
        Some(n) => n,
        None => {
            return compile_error("#[derive(Serialize)] (vendored) supports only structs");
        }
    };

    // Reject generics: the vendored macro intentionally supports only the
    // shapes this workspace uses.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return compile_error("#[derive(Serialize)] (vendored) does not support generic structs");
    }

    // Find the brace-delimited field body.
    let body = tokens[i..].iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    let body = match body {
        Some(b) => b,
        None => {
            return compile_error(
                "#[derive(Serialize)] (vendored) supports only structs with named fields",
            );
        }
    };

    // Collect field names: within the brace group, a field is the identifier
    // immediately before a top-level `:`.  Attributes are skipped and commas
    // inside angle brackets (generic types) do not split fields.
    let mut fields: Vec<String> = Vec::new();
    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut j = 0;
    let mut angle_depth: i32 = 0;
    let mut expecting_field = true;
    while j < body_tokens.len() {
        match &body_tokens[j] {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_field => {
                j += 2; // attribute: `#` + group
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expecting_field = true;
                j += 1;
                continue;
            }
            TokenTree::Ident(ident) if expecting_field && angle_depth == 0 => {
                let word = ident.to_string();
                if word != "pub" {
                    // Named field iff the next token is a `:`.
                    if matches!(
                        body_tokens.get(j + 1),
                        Some(TokenTree::Punct(p)) if p.as_char() == ':'
                    ) {
                        fields.push(word);
                        expecting_field = false;
                    } else {
                        return compile_error(
                            "#[derive(Serialize)] (vendored) supports only named fields",
                        );
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    output.parse().expect("generated impl must tokenise")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("compile_error must tokenise")
}
