//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking surface this workspace uses — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` / `iter_batched`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros — with
//! a straightforward warm-up + fixed-duration measurement loop instead of
//! criterion's statistical machinery.  Results are printed as a mean time per
//! iteration (plus throughput when configured).

#![forbid(unsafe_code)]
// Benchmark harness: reading the wall clock is the whole point.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box to defeat constant folding.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units of work per iteration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (binary prefixes in reports).
    Bytes(u64),
    /// Bytes processed per iteration (decimal prefixes upstream; reported
    /// identically to [`Throughput::Bytes`] here).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    default_measurement: Duration,
    default_warm_up: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_secs(1),
            default_warm_up: Duration::from_millis(200),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (measurement, warm_up, sample_size) = (
            self.default_measurement,
            self.default_warm_up,
            self.default_sample_size,
        );
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement,
            warm_up,
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Accepted for API compatibility; the vendored runner has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time;
        self
    }

    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size;
        self
    }

    /// Associates a throughput with subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let label = match (&self.name.is_empty(), &id.to_string()) {
            (true, id_str) => id_str.clone(),
            (false, id_str) if id_str.is_empty() => self.name.clone(),
            (false, id_str) => format!("{}/{}", self.name, id_str),
        };
        if bencher.iterations == 0 {
            println!("{label:<50} no iterations recorded");
            return;
        }
        let mean = bencher.total / bencher.iterations as u32;
        let mut line = format!(
            "{label:<50} mean {:>12} ({} iterations)",
            format_duration(mean),
            bencher.iterations
        );
        if let Some(throughput) = &self.throughput {
            let per_second = match throughput {
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    let mib = *n as f64 / (1024.0 * 1024.0);
                    format!("{:.1} MiB/s", mib / mean.as_secs_f64())
                }
                Throughput::Elements(n) => {
                    format!("{:.0} elem/s", *n as f64 / mean.as_secs_f64())
                }
            };
            line.push_str(&format!("  [{per_second}]"));
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measure: run until the measurement budget is spent and at least
        // `sample_size` iterations were recorded.
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.measurement || iterations < self.sample_size as u64 {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iterations += 1;
            if iterations >= 10_000_000 {
                break;
            }
        }
        self.total = total;
        self.iterations = iterations;
    }

    /// Measures `routine` with a fresh `setup` product per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_up_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.measurement || iterations < self.sample_size as u64 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iterations += 1;
            if iterations >= 10_000_000 {
                break;
            }
        }
        self.total = total;
        self.iterations = iterations;
    }
}

/// How `iter_batched` amortises setup (accepted for API compatibility; the
/// vendored runner always sets up per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per measured iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.parameter) {
            (Some(name), Some(parameter)) => write!(f, "{name}/{parameter}"),
            (Some(name), None) => write!(f, "{name}"),
            (None, Some(parameter)) => write!(f, "{parameter}"),
            (None, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name: Some(name),
            parameter: None,
        }
    }
}

/// Defines a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |n| n * 2, BatchSize::PerIteration)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sha", 64).to_string(), "sha/64");
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
