//! Offline stand-in for `serde`.
//!
//! Instead of the full serializer/deserializer machinery, this crate models
//! serialisation as conversion into a self-describing [`Value`] tree which
//! `serde_json` then renders.  `#[derive(Serialize)]` is provided by the
//! vendored `serde_derive` proc-macro and expands to a [`Serialize::to_value`]
//! implementation.

#![forbid(unsafe_code)]

/// Re-export of the derive macro so `#[derive(Serialize)]` resolves through
/// `use serde::Serialize;` exactly as with upstream serde.
pub use serde_derive::Serialize;

/// A self-describing serialised value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i128),
    /// An unsigned integer.
    Uint(u128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a serialised value tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(u128::from(*self))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i128::from(*self))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, u128);
impl_serialize_int!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Uint(*self as u128)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Uint(self.as_secs() as u128)),
            (
                "nanos".to_string(),
                Value::Uint(u128::from(self.subsec_nanos())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(3usize.to_value(), Value::Uint(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::Str("x".to_string()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialise() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Uint(1), Value::Uint(2)])
        );
    }
}
