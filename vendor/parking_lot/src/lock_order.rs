//! Dynamic lock-order (ABBA) detection for the instrumented locks.
//!
//! Every [`crate::Mutex`]/[`crate::RwLock`] constructed through
//! `with_class` carries a static **lock class** name.  In debug builds
//! (`cfg(debug_assertions)` — which includes `cargo test`) each thread
//! tracks the multiset of classed locks it currently holds, and every
//! *blocking* acquisition records `held-class → acquired-class` edges into a
//! process-global acquisition-order graph.  The graph accumulates across the
//! whole process lifetime, so an inversion is caught as soon as both orders
//! have *ever* been exercised — even when the interleaving that would
//! actually deadlock never happens on this run.
//!
//! On detecting a cycle the registry either panics (the default — a test
//! run fails loudly) or records a [`CycleReport`] for later inspection
//! ([`violations`]), selectable globally with [`set_cycle_mode`] or for one
//! closure with [`with_thread_mode`] (used by the seeded-inversion tests so
//! an intentional cycle on one thread cannot flip another thread's mode).
//!
//! Deliberate limitations, chosen to keep the checker false-positive free:
//!
//! * `try_lock`/`try_read`/`try_write` push the lock onto the held set but
//!   record no incoming edges — a non-blocking acquisition cannot deadlock,
//!   while *holding* its lock across a later blocking acquisition still
//!   must order correctly (that later acquisition records the edge).
//! * Same-class nesting (two locks of one class held together, e.g. two
//!   apply lanes) is not treated as a cycle; ordering *within* a class is
//!   the owner's responsibility and is documented per class.
//! * `RwLock` readers and writers share the class node — conservative, and
//!   exactly what the deadlock analysis wants (a reader blocks a writer).
//!
//! A cycle that is analysed and found benign is suppressed explicitly with
//! [`trust_edge`] next to a comment justifying the hierarchy — mirroring
//! the `// lint:allow(...)` convention of the static lint.
//!
//! Release builds compile all of this to nothing: the `Held` token is a
//! ZST and `on_acquire` is an empty inline function.

#[cfg(debug_assertions)]
use std::cell::RefCell;
#[cfg(debug_assertions)]
use std::collections::{HashMap, HashSet};
#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU8, Ordering};
#[cfg(debug_assertions)]
use std::sync::{Mutex as StdMutex, OnceLock};

/// What the registry does when a blocking acquisition closes a cycle in the
/// acquisition-order graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CycleMode {
    /// Panic with the cycle path (default; fails the test that found it).
    Panic,
    /// Record a [`CycleReport`] retrievable via [`violations`] and keep
    /// going.
    Report,
}

/// One detected acquisition-order cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleReport {
    /// The class that was held when the cycle closed.
    pub held: &'static str,
    /// The class whose acquisition closed the cycle.
    pub acquired: &'static str,
    /// The pre-existing path `acquired → … → held` that the new
    /// `held → acquired` edge turned into a cycle.
    pub path: Vec<&'static str>,
}

impl CycleReport {
    /// Human-readable rendering: both directions of the conflicting order.
    pub fn describe(&self) -> String {
        let mut chain = String::new();
        for class in &self.path {
            chain.push_str(class);
            chain.push_str(" -> ");
        }
        chain.push_str(self.held);
        format!(
            "lock-order cycle: acquiring '{}' while holding '{}', but the \
             reverse order is already on record ({} -> {})",
            self.acquired, self.held, chain, self.acquired
        )
    }
}

/// RAII token returned by [`on_acquire`]; dropping it releases the class
/// from the thread's held set.  A ZST in release builds.
#[derive(Debug)]
pub struct Held {
    #[cfg(debug_assertions)]
    class: Option<&'static str>,
}

#[cfg(debug_assertions)]
mod registry {
    use super::*;

    pub(super) struct Graph {
        /// `edges[a]` holds every class ever blocking-acquired while `a`
        /// was held.
        pub(super) edges: HashMap<&'static str, HashSet<&'static str>>,
        /// Edges whose cycles a human has vouched for (see [`trust_edge`]).
        pub(super) trusted: HashSet<(&'static str, &'static str)>,
        pub(super) violations: Vec<CycleReport>,
    }

    pub(super) fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            StdMutex::new(Graph {
                edges: HashMap::new(),
                trusted: HashSet::new(),
                violations: Vec::new(),
            })
        })
    }

    /// Global cycle mode: 0 = Panic, 1 = Report.
    pub(super) static MODE: AtomicU8 = AtomicU8::new(0);

    /// Outstanding [`pause_detection`](super::pause_detection) guards.
    /// Non-zero pauses tracking process-wide.
    pub(super) static PAUSES: AtomicU8 = AtomicU8::new(0);

    thread_local! {
        /// Multiset of classed locks this thread currently holds.
        pub(super) static HELD: RefCell<Vec<&'static str>> =
            const { RefCell::new(Vec::new()) };
        /// Per-thread mode override (tests seeding intentional cycles).
        pub(super) static THREAD_MODE: RefCell<Option<CycleMode>> =
            const { RefCell::new(None) };
        /// Edges this thread already pushed into the global graph: skips
        /// the global mutex on the hot path once an ordering is on record.
        /// Class names are static literals, so the address pair identifies
        /// an edge; a linear scan over a short Vec beats hashing two
        /// strings per acquisition in debug builds.  (Distinct literals
        /// with equal text get separate entries — the global graph dedups.)
        pub(super) static SEEN: RefCell<Vec<(*const u8, *const u8)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Depth-first search for a path `from → … → to`; returns it when found.
    pub(super) fn find_path(
        edges: &HashMap<&'static str, HashSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack = vec![(from, vec![from])];
        let mut visited: HashSet<&'static str> = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(nexts) = edges.get(node) {
                for next in nexts {
                    let mut longer = path.clone();
                    longer.push(next);
                    stack.push((next, longer));
                }
            }
        }
        None
    }

    /// True when any consecutive pair of the would-be cycle
    /// (`path + [held] + [acquired]`) is a trusted edge.
    pub(super) fn cycle_is_trusted(
        trusted: &HashSet<(&'static str, &'static str)>,
        report: &CycleReport,
    ) -> bool {
        if trusted.contains(&(report.held, report.acquired)) {
            return true;
        }
        let mut nodes = report.path.clone();
        nodes.push(report.held);
        nodes.windows(2).any(|w| trusted.contains(&(w[0], w[1])))
    }
}

/// Records a (possibly) blocking acquisition of `class` and returns the
/// held-set token to tie to the guard.  Unclassed locks pass `None` and are
/// invisible to the detector.
#[cfg(debug_assertions)]
pub(crate) fn on_acquire(class: Option<&'static str>, blocking: bool) -> Held {
    let Some(class) = class else {
        return Held { class: None };
    };
    if registry::PAUSES.load(Ordering::Relaxed) != 0 {
        // Paused (a bench timing phase): return an untracked token, so its
        // drop is a no-op even if detection resumes while it is held.
        return Held { class: None };
    }
    registry::HELD.with(|held| {
        let mut held = held.borrow_mut();
        if blocking && !held.is_empty() {
            // Distinct held classes, skipping same-class nesting and
            // duplicates earlier in the hold list.
            for i in 0..held.len() {
                let held_class = held[i];
                if held_class == class || held[..i].contains(&held_class) {
                    continue;
                }
                record_edge(held_class, class);
            }
        }
        held.push(class);
    });
    Held { class: Some(class) }
}

#[cfg(not(debug_assertions))]
#[inline(always)]
pub(crate) fn on_acquire(_class: Option<&'static str>, _blocking: bool) -> Held {
    Held {}
}

/// Inserts `held → acquired` into the global graph and reacts to any cycle
/// it closes.
#[cfg(debug_assertions)]
fn record_edge(held_class: &'static str, class: &'static str) {
    let key = (held_class.as_ptr(), class.as_ptr());
    let fresh = registry::SEEN.with(|seen| !seen.borrow().contains(&key));
    if !fresh {
        return; // this thread already pushed the edge; ordering unchanged
    }
    let mut graph = match registry::graph().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let known = graph
        .edges
        .get(held_class)
        .is_some_and(|next| next.contains(class));
    if known {
        return;
    }
    // New ordering fact: does the reverse direction already exist?
    let cycle = registry::find_path(&graph.edges, class, held_class);
    if let Some(path) = cycle {
        let report = CycleReport {
            held: held_class,
            acquired: class,
            path,
        };
        if !registry::cycle_is_trusted(&graph.trusted, &report) {
            let mode = registry::THREAD_MODE
                .with(|mode| *mode.borrow())
                .unwrap_or(match registry::MODE.load(Ordering::Relaxed) {
                    1 => CycleMode::Report,
                    _ => CycleMode::Panic,
                });
            match mode {
                CycleMode::Panic => {
                    // The offending edge is *not* committed, so a caught
                    // panic (tests) leaves the graph cycle-free.
                    let message = report.describe();
                    drop(graph);
                    panic!("{message}");
                }
                CycleMode::Report => {
                    let duplicate = graph
                        .violations
                        .iter()
                        .any(|v| v.held == report.held && v.acquired == report.acquired);
                    if !duplicate {
                        graph.violations.push(report);
                    }
                }
            }
        }
    }
    graph.edges.entry(held_class).or_default().insert(class);
    drop(graph);
    // Cache only once the edge is committed: a panicking acquisition must
    // stay un-cached, or a caught panic would let the same inversion pass
    // silently on this thread next time.
    registry::SEEN.with(|seen| seen.borrow_mut().push(key));
}

#[cfg(debug_assertions)]
impl Drop for Held {
    fn drop(&mut self) {
        let Some(class) = self.class else { return };
        registry::HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|&h| h == class) {
                held.remove(at);
            }
        });
    }
}

/// Pauses lock-order tracking process-wide until the returned guard drops.
/// Guards nest; tracking resumes when the last one goes.
///
/// For debug-build timing measurements (the pipelined-vs-inline ingest
/// smoke bench): per-acquisition bookkeeping is cheap but not free, and it
/// taxes configurations in proportion to how many locks they take — which
/// is exactly the quantity such benches compare.  Everything acquired
/// while paused is simply invisible to the graph; nothing is unbalanced
/// when tracking resumes, because untracked tokens stay untracked for
/// their whole lifetime.  No-op in release builds, where the detector does
/// not exist anyway.
#[must_use]
pub fn pause_detection() -> DetectionPause {
    #[cfg(debug_assertions)]
    registry::PAUSES.fetch_add(1, Ordering::Relaxed);
    DetectionPause { _private: () }
}

/// RAII guard from [`pause_detection`]; resumes tracking on drop.
pub struct DetectionPause {
    _private: (),
}

impl Drop for DetectionPause {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        registry::PAUSES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sets the process-wide reaction to a detected cycle (default:
/// [`CycleMode::Panic`]).  No-op in release builds.
pub fn set_cycle_mode(mode: CycleMode) {
    #[cfg(debug_assertions)]
    registry::MODE.store(
        match mode {
            CycleMode::Panic => 0,
            CycleMode::Report => 1,
        },
        Ordering::Relaxed,
    );
    #[cfg(not(debug_assertions))]
    let _ = mode;
}

/// Runs `f` with this thread's cycle reaction overridden to `mode` —
/// scoped, so a test seeding an intentional inversion cannot change how
/// concurrently running tests react.
pub fn with_thread_mode<R>(mode: CycleMode, f: impl FnOnce() -> R) -> R {
    #[cfg(debug_assertions)]
    {
        let previous = registry::THREAD_MODE
            .with(|slot| slot.borrow_mut().replace(mode));
        struct Restore(Option<CycleMode>);
        impl Drop for Restore {
            fn drop(&mut self) {
                registry::THREAD_MODE.with(|slot| *slot.borrow_mut() = self.0);
            }
        }
        let _restore = Restore(previous);
        f()
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = mode;
        f()
    }
}

/// Marks the ordering `from → to` as human-audited: any cycle that runs
/// through this edge is suppressed.  Call it next to a comment explaining
/// the actual lock hierarchy.  No-op in release builds.
pub fn trust_edge(from: &'static str, to: &'static str) {
    #[cfg(debug_assertions)]
    {
        let mut graph = match registry::graph().lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        graph.trusted.insert((from, to));
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (from, to);
    }
}

/// Cycles recorded while in [`CycleMode::Report`].  Empty in release
/// builds.
pub fn violations() -> Vec<CycleReport> {
    #[cfg(debug_assertions)]
    {
        let graph = match registry::graph().lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        graph.violations.clone()
    }
    #[cfg(not(debug_assertions))]
    Vec::new()
}

/// Drops every recorded violation (test isolation).
pub fn clear_violations() {
    #[cfg(debug_assertions)]
    {
        let mut graph = match registry::graph().lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        graph.violations.clear();
    }
}

/// A snapshot of the accumulated acquisition-order graph as
/// `(held, then-acquired)` pairs.  Empty in release builds.
pub fn graph_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(debug_assertions)]
    {
        let graph = match registry::graph().lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut edges: Vec<(&'static str, &'static str)> = graph
            .edges
            .iter()
            .flat_map(|(from, tos)| tos.iter().map(|to| (*from, *to)))
            .collect();
        edges.sort_unstable();
        edges
    }
    #[cfg(not(debug_assertions))]
    Vec::new()
}

/// The classes this thread currently holds (diagnostics/tests).
pub fn held_classes() -> Vec<&'static str> {
    #[cfg(debug_assertions)]
    {
        registry::HELD.with(|held| held.borrow().clone())
    }
    #[cfg(not(debug_assertions))]
    Vec::new()
}
