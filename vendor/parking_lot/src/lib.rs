//! Offline stand-in for the `parking_lot` crate, instrumented for
//! lock-order analysis.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! poison-free API (guards are returned directly, a poisoned lock simply
//! hands back the inner guard since a panic mid-critical-section aborts the
//! affected test anyway).  Only the surface this workspace uses is provided.
//!
//! On top of the stand-in API, every lock can carry a static **class name**
//! ([`Mutex::with_class`] / [`RwLock::with_class`]); classed locks feed the
//! debug-build lock-order detector in [`lock_order`], which accumulates a
//! process-global acquisition-order graph and panics (or reports) on any
//! cycle — catching *potential* ABBA deadlocks even on schedules that never
//! actually deadlock.  `jxta-lint` enforces that library code constructs
//! locks only through `with_class`.

#![forbid(unsafe_code)]
// This crate *implements* the instrumented locks, so it is the one place
// allowed to name the raw std primitives the rest of the workspace bans.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard};

pub mod lock_order;

use lock_order::Held;

/// A mutual-exclusion primitive (poison-free facade over `std::sync::Mutex`
/// with optional lock-order instrumentation).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    class: Option<&'static str>,
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock (and its
/// lock-order held-set entry) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    _held: Held,
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`, invisible to the lock-order
    /// detector.  Library code should prefer [`Mutex::with_class`].
    pub const fn new(value: T) -> Self {
        Mutex {
            class: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a new mutex carrying the lock-order class `class`.  Every
    /// blocking acquisition while other classed locks are held records an
    /// ordering edge in [`lock_order`]'s global graph (debug builds only).
    pub const fn with_class(class: &'static str, value: T) -> Self {
        Mutex {
            class: Some(class),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The lock-order class this mutex was constructed with, if any.
    pub fn class(&self) -> Option<&'static str> {
        self.class
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = lock_order::on_acquire(self.class, true);
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { _held: held, inner }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // Non-blocking: enters the held set but records no incoming edges.
        let held = lock_order::on_acquire(self.class, false);
        Some(MutexGuard { _held: held, inner })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock (poison-free facade over `std::sync::RwLock` with
/// optional lock-order instrumentation).  Readers and writers share one
/// lock-order class node: a held read lock blocks a writer, so the
/// conservative merge is exactly what deadlock analysis needs.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    class: Option<&'static str>,
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _held: Held,
    inner: StdRwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _held: Held,
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`, invisible to the lock-order
    /// detector.  Library code should prefer [`RwLock::with_class`].
    pub const fn new(value: T) -> Self {
        RwLock {
            class: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a new lock carrying the lock-order class `class` (see
    /// [`Mutex::with_class`]).
    pub const fn with_class(class: &'static str, value: T) -> Self {
        RwLock {
            class: Some(class),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The lock-order class this lock was constructed with, if any.
    pub fn class(&self) -> Option<&'static str> {
        self.class
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = lock_order::on_acquire(self.class, true);
        let inner = match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { _held: held, inner }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = lock_order::on_acquire(self.class, true);
        let inner = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { _held: held, inner }
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let held = lock_order::on_acquire(self.class, false);
        Some(RwLockReadGuard { _held: held, inner })
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let held = lock_order::on_acquire(self.class, false);
        Some(RwLockWriteGuard { _held: held, inner })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lock_order::{self, CycleMode};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn classed_locks_expose_their_class() {
        let m = Mutex::with_class("test.classed.mutex", 0u8);
        let l = RwLock::with_class("test.classed.rwlock", 0u8);
        assert_eq!(m.class(), Some("test.classed.mutex"));
        assert_eq!(l.class(), Some("test.classed.rwlock"));
        assert_eq!(Mutex::new(0u8).class(), None);
    }

    #[test]
    fn consistent_order_records_edges_without_firing() {
        let a = Mutex::with_class("test.consistent.a", ());
        let b = Mutex::with_class("test.consistent.b", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(lock_order::graph_edges()
            .contains(&("test.consistent.a", "test.consistent.b")));
        assert!(!lock_order::violations().iter().any(|v| {
            v.held.starts_with("test.consistent") || v.acquired.starts_with("test.consistent")
        }));
    }

    #[test]
    fn held_set_tracks_guard_lifetimes() {
        let a = Mutex::with_class("test.held.a", ());
        let b = RwLock::with_class("test.held.b", ());
        {
            let _ga = a.lock();
            let _gb = b.read();
            let held = lock_order::held_classes();
            assert!(held.contains(&"test.held.a"));
            assert!(held.contains(&"test.held.b"));
        }
        let held = lock_order::held_classes();
        assert!(!held.contains(&"test.held.a"));
        assert!(!held.contains(&"test.held.b"));
    }

    /// The seeded ABBA inversion: once `a → b` is on record, acquiring `a`
    /// while holding `b` fires the detector even though this schedule never
    /// deadlocks (it is one thread).
    #[test]
    fn abba_inversion_panics_in_panic_mode() {
        let a = Mutex::with_class("test.abba.panic.a", ());
        let b = Mutex::with_class("test.abba.panic.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.lock();
        }));
        let message = result
            .expect_err("ABBA inversion must panic the acquiring thread")
            .downcast::<String>()
            .expect("panic payload is the cycle description");
        assert!(message.contains("lock-order cycle"), "got: {message}");
        assert!(message.contains("test.abba.panic.a"), "got: {message}");
        // The offending edge was not committed: the graph stays acyclic and
        // the correct order still works.
        drop(_gb);
        let _ga = a.lock();
        let _gb2 = b.lock();
    }

    #[test]
    fn abba_inversion_reports_in_report_mode() {
        let a = RwLock::with_class("test.abba.report.a", ());
        let b = Mutex::with_class("test.abba.report.b", ());
        {
            let _ga = a.write();
            let _gb = b.lock();
        }
        lock_order::with_thread_mode(CycleMode::Report, || {
            let _gb = b.lock();
            let _ga = a.read();
        });
        let violation = lock_order::violations()
            .into_iter()
            .find(|v| v.held == "test.abba.report.b")
            .expect("inversion recorded");
        assert_eq!(violation.acquired, "test.abba.report.a");
        assert_eq!(
            violation.path,
            vec!["test.abba.report.a", "test.abba.report.b"]
        );
    }

    #[test]
    fn transitive_cycle_through_third_class_is_detected() {
        let a = Mutex::with_class("test.chain.a", ());
        let b = Mutex::with_class("test.chain.b", ());
        let c = Mutex::with_class("test.chain.c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        lock_order::with_thread_mode(CycleMode::Report, || {
            let _gc = c.lock();
            let _ga = a.lock();
        });
        let violation = lock_order::violations()
            .into_iter()
            .find(|v| v.held == "test.chain.c")
            .expect("transitive inversion recorded");
        assert_eq!(violation.acquired, "test.chain.a");
        assert_eq!(
            violation.path,
            vec!["test.chain.a", "test.chain.b", "test.chain.c"]
        );
    }

    #[test]
    fn trusted_edge_suppresses_the_cycle() {
        let a = Mutex::with_class("test.trusted.a", ());
        let b = Mutex::with_class("test.trusted.b", ());
        // Hierarchy note (what a real annotation looks like): a and b are
        // only ever both taken by the single maintenance thread, so the
        // inversion cannot deadlock.
        lock_order::trust_edge("test.trusted.a", "test.trusted.b");
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let _ga = a.lock(); // would fire without the trust_edge
        assert!(!lock_order::violations()
            .iter()
            .any(|v| v.held == "test.trusted.b"));
    }

    #[test]
    fn paused_detection_ignores_inversions_and_stays_balanced() {
        let a = Mutex::with_class("pause.a", ());
        let b = Mutex::with_class("pause.b", ());
        {
            let _pause = lock_order::pause_detection();
            // Inverted orders while paused: invisible, no panic, no edges.
            let gb = b.lock();
            let ga = a.lock();
            drop(gb);
            // Resume while `ga` (acquired untracked) is still held: its
            // drop must not unbalance the live held set.
            drop(_pause);
            let held = lock_order::held_classes();
            assert!(
                !held.contains(&"pause.a") && !held.contains(&"pause.b"),
                "paused acquisitions must stay invisible: {held:?}"
            );
            drop(ga);
        }
        let edges = lock_order::graph_edges();
        assert!(
            !edges.contains(&("pause.b", "pause.a")),
            "paused ordering leaked into the graph"
        );
        // Tracking is live again: the forward order records normally.
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        assert!(lock_order::graph_edges().contains(&("pause.a", "pause.b")));
    }

    #[test]
    fn try_lock_does_not_record_incoming_edges() {
        let a = Mutex::with_class("test.trylock.a", ());
        let b = Mutex::with_class("test.trylock.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            // Reverse order via try_lock: legal, records nothing.
            let _gb = b.lock();
            let _ga = a.try_lock().expect("uncontended");
        }
        assert!(!lock_order::graph_edges()
            .contains(&("test.trylock.b", "test.trylock.a")));
    }

    #[test]
    fn same_class_nesting_is_not_a_cycle() {
        let a1 = Mutex::with_class("test.sameclass", 1);
        let a2 = Mutex::with_class("test.sameclass", 2);
        let _g1 = a1.lock();
        let _g2 = a2.lock();
        assert!(!lock_order::graph_edges()
            .contains(&("test.sameclass", "test.sameclass")));
    }
}
