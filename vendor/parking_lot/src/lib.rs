//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! poison-free API (guards are returned directly, a poisoned lock simply
//! hands back the inner guard since a panic mid-critical-section aborts the
//! affected test anyway).  Only the surface this workspace uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
